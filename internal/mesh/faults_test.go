package mesh

import (
	"strings"
	"testing"
)

// TestFaultedEmptyIsIdentity: wrapping any topology with the zero FaultSet
// must change nothing — fingerprint, every bandwidth and latency, and
// SameTopology equality with the base.
func TestFaultedEmptyIsIdentity(t *testing.T) {
	for _, base := range []Topology{
		AWSP3Cluster(4),
		DGXA100Cluster(2),
		MixedP3DGXCluster(2, 2, 2),
	} {
		f, err := NewFaulted(base, FaultSet{})
		if err != nil {
			t.Fatalf("%v: %v", base, err)
		}
		if f.Fingerprint() != base.Fingerprint() {
			t.Errorf("%v: empty overlay changed the fingerprint", base)
		}
		if !SameTopology(f, base) {
			t.Errorf("%v: empty overlay is not SameTopology with its base", base)
		}
		for h := 0; h < base.HostCount(); h++ {
			if f.IntraBandwidth(h) != base.IntraBandwidth(h) || f.NICBandwidth(h) != base.NICBandwidth(h) {
				t.Errorf("%v host %d: empty overlay changed host bandwidths", base, h)
			}
			for g := 0; g < base.HostCount(); g++ {
				if g == h {
					continue
				}
				if f.InterBandwidth(h, g) != base.InterBandwidth(h, g) || f.InterLatency(h, g) != base.InterLatency(h, g) {
					t.Errorf("%v link %d-%d: empty overlay changed the fabric", base, h, g)
				}
			}
		}
	}
}

// TestFaultedStragglerScalesHost: a host fault scales the NIC, the
// intra-host link and every cross-host path touching the host.
func TestFaultedStragglerScalesHost(t *testing.T) {
	base := AWSP3Cluster(3)
	f, err := NewFaulted(base, FaultSet{Hosts: []HostFault{{Host: 1, NICScale: 0.25, IntraScale: 0.5}}})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := f.NICBandwidth(1), base.NICBandwidth(1)*0.25; got != want {
		t.Errorf("NIC bandwidth = %g, want %g", got, want)
	}
	if got, want := f.IntraBandwidth(1), base.IntraBandwidth(1)*0.5; got != want {
		t.Errorf("intra bandwidth = %g, want %g", got, want)
	}
	if got, want := f.InterBandwidth(0, 1), base.InterBandwidth(0, 1)*0.25; got != want {
		t.Errorf("inter bandwidth touching the straggler = %g, want %g", got, want)
	}
	if got, want := f.InterBandwidth(0, 2), base.InterBandwidth(0, 2); got != want {
		t.Errorf("inter bandwidth avoiding the straggler = %g, want %g", got, want)
	}
	// Unfaulted host untouched.
	if f.NICBandwidth(0) != base.NICBandwidth(0) || f.IntraBandwidth(2) != base.IntraBandwidth(2) {
		t.Error("host fault leaked onto other hosts")
	}
}

// TestFaultedLinkScaleAndLatency: a degraded link scales its own
// bandwidth and adds its own latency, leaving every other link alone.
func TestFaultedLinkScaleAndLatency(t *testing.T) {
	base := AWSP3Cluster(3)
	f, err := NewFaulted(base, FaultSet{Links: []LinkFault{{A: 1, B: 0, BandwidthScale: 0.5, ExtraLatency: 20e-6}}})
	if err != nil {
		t.Fatal(err)
	}
	// The pair is unordered: fault given as 1-0 applies to 0-1 too.
	for _, pair := range [][2]int{{0, 1}, {1, 0}} {
		if got, want := f.InterBandwidth(pair[0], pair[1]), base.InterBandwidth(pair[0], pair[1])*0.5; got != want {
			t.Errorf("link %v bandwidth = %g, want %g", pair, got, want)
		}
		if got, want := f.InterLatency(pair[0], pair[1]), base.InterLatency(pair[0], pair[1])+20e-6; got != want {
			t.Errorf("link %v latency = %g, want %g", pair, got, want)
		}
	}
	if f.InterBandwidth(0, 2) != base.InterBandwidth(0, 2) || f.InterLatency(1, 2) != base.InterLatency(1, 2) {
		t.Error("link fault leaked onto other links")
	}
}

// TestFaultedDownLinkDetours: a down link reroutes through the best
// surviving relay: bandwidth capped at the direct link's, latency the sum
// of the two detour hops (floored at the direct latency).
func TestFaultedDownLinkDetours(t *testing.T) {
	base := AWSP3Cluster(3)
	f, err := NewFaulted(base, FaultSet{Links: []LinkFault{{A: 0, B: 1, Down: true}}})
	if err != nil {
		t.Fatal(err)
	}
	// Homogeneous cluster: the detour via host 2 has the same bandwidth as
	// the direct link (capped there) and double the latency.
	if got, want := f.InterBandwidth(0, 1), base.InterBandwidth(0, 1); got != want {
		t.Errorf("detour bandwidth = %g, want %g", got, want)
	}
	if got, want := f.InterLatency(0, 1), 2*base.InterLatency(0, 1); got != want {
		t.Errorf("detour latency = %g, want %g", got, want)
	}
	if f.InterBandwidth(1, 0) != f.InterBandwidth(0, 1) {
		t.Error("detour must be symmetric on a symmetric base")
	}
	// A straggler relay degrades the detour it carries.
	f2, err := NewFaulted(base, FaultSet{
		Links: []LinkFault{{A: 0, B: 1, Down: true}},
		Hosts: []HostFault{{Host: 2, NICScale: 0.5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := f2.InterBandwidth(0, 1), base.InterBandwidth(0, 1)*0.5; got != want {
		t.Errorf("detour through straggler relay = %g, want %g", got, want)
	}
}

// TestFaultedValidation: every malformed fault set is rejected with a
// clear error, and a down link with no surviving detour is caught at
// construction.
func TestFaultedValidation(t *testing.T) {
	base := AWSP3Cluster(3)
	cases := []struct {
		name string
		fs   FaultSet
		want string
	}{
		{"host out of range", FaultSet{Hosts: []HostFault{{Host: 3, NICScale: 0.5}}}, "host fault on host 3"},
		{"negative host", FaultSet{Hosts: []HostFault{{Host: -1, NICScale: 0.5}}}, "host fault on host -1"},
		{"nic scale above one", FaultSet{Hosts: []HostFault{{Host: 0, NICScale: 1.5}}}, "scales must be in (0,1]"},
		{"host fault no-op", FaultSet{Hosts: []HostFault{{Host: 0}}}, "degrades nothing"},
		{"duplicate host", FaultSet{Hosts: []HostFault{{Host: 0, NICScale: 0.5}, {Host: 0, IntraScale: 0.5}}}, "duplicate host fault"},
		{"link out of range", FaultSet{Links: []LinkFault{{A: 0, B: 9, BandwidthScale: 0.5}}}, "outside the 3-host topology"},
		{"self link", FaultSet{Links: []LinkFault{{A: 1, B: 1, BandwidthScale: 0.5}}}, "not an inter-host link"},
		{"duplicate link", FaultSet{Links: []LinkFault{{A: 0, B: 1, BandwidthScale: 0.5}, {A: 1, B: 0, Down: true}}}, "duplicate fault for link 0-1"},
		{"link scale above one", FaultSet{Links: []LinkFault{{A: 0, B: 1, BandwidthScale: 2}}}, "must be in (0,1]"},
		{"negative extra latency", FaultSet{Links: []LinkFault{{A: 0, B: 1, ExtraLatency: -1e-6}}}, "finite and non-negative"},
		{"link fault no-op", FaultSet{Links: []LinkFault{{A: 0, B: 1}}}, "degrades nothing"},
		{"down link with scale", FaultSet{Links: []LinkFault{{A: 0, B: 1, Down: true, BandwidthScale: 0.5}}}, "cannot also scale"},
	}
	for _, c := range cases {
		if _, err := NewFaulted(base, c.fs); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error = %v, want substring %q", c.name, err, c.want)
		}
	}
	// Two hosts, the only link down: no detour exists.
	if _, err := NewFaulted(AWSP3Cluster(2), FaultSet{Links: []LinkFault{{A: 0, B: 1, Down: true}}}); err == nil || !strings.Contains(err.Error(), "no live detour") {
		t.Errorf("isolating down link: error = %v, want a no-live-detour error", err)
	}
	// Three hosts with every link down around host 0.
	if _, err := NewFaulted(base, FaultSet{Links: []LinkFault{
		{A: 0, B: 1, Down: true}, {A: 0, B: 2, Down: true},
	}}); err == nil || !strings.Contains(err.Error(), "no live detour") {
		t.Errorf("isolated host: error = %v, want a no-live-detour error", err)
	}
}

// TestFaultedFingerprintPartition: the fault set is folded into
// Fingerprint — any non-empty overlay differs from the base and from
// every other distinct overlay, and the canonical form is order-blind.
func TestFaultedFingerprintPartition(t *testing.T) {
	base := AWSP3Cluster(3)
	mk := func(fs FaultSet) string { return MustFaulted(base, fs).Fingerprint() }
	a := mk(FaultSet{Hosts: []HostFault{{Host: 0, NICScale: 0.5}}})
	b := mk(FaultSet{Hosts: []HostFault{{Host: 0, NICScale: 0.25}}})
	c := mk(FaultSet{Links: []LinkFault{{A: 0, B: 1, Down: true}}})
	if a == base.Fingerprint() || a == b || a == c || b == c {
		t.Errorf("fingerprints collide: base=%q a=%q b=%q c=%q", base.Fingerprint(), a, b, c)
	}
	// Declaration order and endpoint order are canonicalized away.
	x := mk(FaultSet{
		Links: []LinkFault{{A: 2, B: 1, BandwidthScale: 0.5}, {A: 1, B: 0, ExtraLatency: 1e-6}},
		Hosts: []HostFault{{Host: 1, IntraScale: 0.5}, {Host: 0, NICScale: 0.5}},
	})
	y := mk(FaultSet{
		Hosts: []HostFault{{Host: 0, NICScale: 0.5}, {Host: 1, IntraScale: 0.5}},
		Links: []LinkFault{{A: 0, B: 1, ExtraLatency: 1e-6}, {A: 1, B: 2, BandwidthScale: 0.5}},
	})
	if x != y {
		t.Errorf("canonicalization is order-sensitive:\n%q\n%q", x, y)
	}
}

// TestFaultedDelegatesStructure: structural queries pass straight through
// to the base — the overlay degrades timing, never shape.
func TestFaultedDelegatesStructure(t *testing.T) {
	base := MixedP3DGXCluster(2, 2, 2)
	f := MustFaulted(base, FaultSet{Hosts: []HostFault{{Host: 3, NICScale: 0.5}}})
	if f.NumDevices() != base.NumDevices() || f.HostCount() != base.HostCount() {
		t.Fatal("overlay changed counts")
	}
	for d := 0; d < base.NumDevices(); d++ {
		if f.HostOf(d) != base.HostOf(d) {
			t.Fatalf("device %d moved hosts", d)
		}
	}
	m, err := f.Slice([]int{2, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Topo != Topology(f) {
		t.Error("sliced mesh must be bound to the faulted topology")
	}
}

// TestParseFaultSet: the CLI notation round-trips into the expected fault
// sets and rejects malformed clauses.
func TestParseFaultSet(t *testing.T) {
	fs, err := ParseFaultSet("link:0-1:down; link:0-2:bw=0.5,lat+=20e-6; host:3:nic=0.25,intra=0.5")
	if err != nil {
		t.Fatal(err)
	}
	want := FaultSet{
		Links: []LinkFault{
			{A: 0, B: 1, Down: true},
			{A: 0, B: 2, BandwidthScale: 0.5, ExtraLatency: 20e-6},
		},
		Hosts: []HostFault{{Host: 3, NICScale: 0.25, IntraScale: 0.5}},
	}
	if fs.Canonical() != want.Canonical() {
		t.Errorf("parsed %q, want %q", fs.Canonical(), want.Canonical())
	}
	if fs, err := ParseFaultSet(""); err != nil || !fs.Empty() {
		t.Errorf("empty spec: fs=%+v err=%v", fs, err)
	}
	for _, bad := range []string{
		"link:0-1",            // missing fields
		"link:01:down",        // bad endpoints
		"link:0-1:warp=9",     // unknown field
		"host:x:nic=0.5",      // bad host index
		"host:0:turbo=2",      // unknown field
		"spine:0-1:down",      // unknown kind
		"link:0-1:bw=fast",    // bad float
		"host:0:nic=0.5,,bad", // trailing garbage
	} {
		if _, err := ParseFaultSet(bad); err == nil {
			t.Errorf("ParseFaultSet(%q) accepted a malformed spec", bad)
		}
	}
}

// TestRegistryFaultScenarios: the default registry names the built-in
// scenarios, builds them against concrete topologies, and reports
// actionable errors for scenarios a topology cannot host.
func TestRegistryFaultScenarios(t *testing.T) {
	r := DefaultRegistry()
	names := r.FaultScenarioNames()
	for _, want := range []string{FaultBrownout, FaultLinkDown, FaultStraggler} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("scenario %q missing from %v", want, names)
		}
	}
	topo := AWSP3Cluster(3)
	for _, name := range names {
		fs, err := r.BuildFaultScenario(name, topo)
		if err != nil {
			t.Errorf("%s on 3-host p3: %v", name, err)
			continue
		}
		if fs.Empty() {
			t.Errorf("%s built an empty overlay", name)
		}
		if _, err := NewFaulted(topo, fs); err != nil {
			t.Errorf("%s overlay rejected by NewFaulted: %v", name, err)
		}
	}
	if _, err := r.BuildFaultScenario(FaultLinkDown, AWSP3Cluster(2)); err == nil {
		t.Error("link-down on 2 hosts must fail (no detour possible)")
	}
	if _, err := r.BuildFaultScenario("nosuch", topo); err == nil || !strings.Contains(err.Error(), "unknown fault scenario") {
		t.Errorf("unknown scenario error = %v", err)
	}
	if err := r.RegisterFaultScenario(FaultBrownout, func(Topology) (FaultSet, error) { return FaultSet{}, nil }); err == nil {
		t.Error("duplicate scenario registration must fail")
	}
}

// TestFaultedMonotone: no query on a valid overlay is ever faster than
// its base — the invariant the degraded-makespan properties build on.
func TestFaultedMonotone(t *testing.T) {
	base := MixedP3DGXCluster(2, 2, 1.5)
	f := MustFaulted(base, FaultSet{
		Links: []LinkFault{
			{A: 0, B: 1, Down: true},
			{A: 0, B: 2, BandwidthScale: 0.5, ExtraLatency: 30e-6},
			{A: 1, B: 3, BandwidthScale: 0.75},
		},
		Hosts: []HostFault{{Host: 2, NICScale: 0.5, IntraScale: 0.5}},
	})
	for h := 0; h < base.HostCount(); h++ {
		if f.IntraBandwidth(h) > base.IntraBandwidth(h) || f.NICBandwidth(h) > base.NICBandwidth(h) {
			t.Errorf("host %d: overlay sped a host up", h)
		}
		for g := 0; g < base.HostCount(); g++ {
			if g == h {
				continue
			}
			if f.InterBandwidth(h, g) > base.InterBandwidth(h, g) {
				t.Errorf("link %d-%d: degraded bandwidth %g beats base %g", h, g, f.InterBandwidth(h, g), base.InterBandwidth(h, g))
			}
			if f.InterLatency(h, g) < base.InterLatency(h, g) {
				t.Errorf("link %d-%d: degraded latency %g beats base %g", h, g, f.InterLatency(h, g), base.InterLatency(h, g))
			}
		}
	}
}
