package mesh

import (
	"strings"
	"testing"
	"time"
)

func TestParseChurnTimelineRoundTrip(t *testing.T) {
	cases := []string{
		"@0s link:0-1:down | @500ms  | @1s host:1:nic=0.25",
		"@0s link:0-1:bw=0.5,lat+=1e-06 | @2s ",
		"@0s host:2:nic=0.25,intra=0.5",
	}
	for _, in := range cases {
		tl, err := ParseChurnTimeline(in)
		if err != nil {
			t.Fatalf("parse %q: %v", in, err)
		}
		tl2, err := ParseChurnTimeline(tl.String())
		if err != nil {
			t.Fatalf("re-parse %q (from %q): %v", tl.String(), in, err)
		}
		if tl.String() != tl2.String() {
			t.Fatalf("round trip changed: %q -> %q", tl.String(), tl2.String())
		}
		if len(tl.Steps) != len(tl2.Steps) {
			t.Fatalf("round trip changed step count: %d -> %d", len(tl.Steps), len(tl2.Steps))
		}
		for i := range tl.Steps {
			if tl.Steps[i].At != tl2.Steps[i].At {
				t.Fatalf("step %d time changed: %v -> %v", i, tl.Steps[i].At, tl2.Steps[i].At)
			}
			if tl.Steps[i].Faults.Canonical() != tl2.Steps[i].Faults.Canonical() {
				t.Fatalf("step %d overlay changed: %q -> %q",
					i, tl.Steps[i].Faults.Canonical(), tl2.Steps[i].Faults.Canonical())
			}
		}
	}
}

func TestParseChurnTimelineErrors(t *testing.T) {
	cases := map[string]string{
		"link:0-1:down":           "must start with",
		"@abc link:0-1:down":      "bad time",
		"@0 link:0-1:wat":         "",
		"@1s | @1s":               "does not advance",
		"@2s | @1s link:0-1:down": "does not advance",
		"@-1s link:0-1:down":      "negative",
	}
	for in, want := range cases {
		_, err := ParseChurnTimeline(in)
		if err == nil {
			t.Fatalf("parse %q: want error, got none", in)
		}
		if want != "" && !strings.Contains(err.Error(), want) {
			t.Fatalf("parse %q: error %q does not mention %q", in, err, want)
		}
	}
}

func TestChurnTimelineActiveAt(t *testing.T) {
	tl, err := ParseChurnTimeline("@100ms link:0-1:down | @200ms | @300ms host:1:nic=0.25")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		at      time.Duration
		idx     int
		overlay string
	}{
		{0, -1, ""},
		{99 * time.Millisecond, -1, ""},
		{100 * time.Millisecond, 0, "link:0-1:down"},
		{150 * time.Millisecond, 0, "link:0-1:down"},
		{200 * time.Millisecond, 1, ""},
		{299 * time.Millisecond, 1, ""},
		{300 * time.Millisecond, 2, "host:1:nic=0.25"},
		{time.Hour, 2, "host:1:nic=0.25"},
	}
	for _, c := range cases {
		fs, idx := tl.ActiveAt(c.at)
		if idx != c.idx {
			t.Fatalf("ActiveAt(%v): idx = %d, want %d", c.at, idx, c.idx)
		}
		if got := faultSetSpec(fs); got != c.overlay {
			t.Fatalf("ActiveAt(%v): overlay %q, want %q", c.at, got, c.overlay)
		}
	}
}

func TestChurnTimelineValidateTopology(t *testing.T) {
	topo := AWSP3Cluster(3)
	good, err := ParseChurnTimeline("@0 link:0-1:down | @1s")
	if err != nil {
		t.Fatal(err)
	}
	if err := good.Validate(topo); err != nil {
		t.Fatalf("valid timeline rejected: %v", err)
	}
	// Host 9 does not exist on a 3-host cluster; shape-only validation
	// passes but topology validation must reject it.
	bad, err := ParseChurnTimeline("@0 host:9:nic=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if err := bad.Validate(topo); err == nil {
		t.Fatal("out-of-range host accepted by Validate(topo)")
	}
	// A two-host cluster has no detour for a downed 0-1 link.
	twoHost, err := ParseChurnTimeline("@0 link:0-1:down")
	if err != nil {
		t.Fatal(err)
	}
	if err := twoHost.Validate(AWSP3Cluster(2)); err == nil {
		t.Fatal("detour-less link-down accepted by Validate(topo)")
	}
}

func TestDefaultRegistryChurnScenarios(t *testing.T) {
	r := DefaultRegistry()
	names := r.ChurnScenarioNames()
	want := []string{ChurnBrownoutRecovery, ChurnCascade, ChurnFlap}
	if len(names) != len(want) {
		t.Fatalf("churn scenario names = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("churn scenario names = %v, want %v", names, want)
		}
	}
	topo := AWSP3Cluster(4)
	for _, name := range names {
		tl, err := r.BuildChurnScenario(name, topo)
		if err != nil {
			t.Fatalf("build %q: %v", name, err)
		}
		if tl.Empty() {
			t.Fatalf("scenario %q is empty", name)
		}
		if err := tl.Validate(topo); err != nil {
			t.Fatalf("scenario %q invalid: %v", name, err)
		}
		// Every scenario ends healed.
		last := tl.Steps[len(tl.Steps)-1]
		if len(last.Faults.Links) != 0 || len(last.Faults.Hosts) != 0 {
			t.Fatalf("scenario %q does not end healed: %v", name, last.Faults)
		}
	}
	// Flap revisits the same overlay identity — the cache-hit case.
	flap, err := r.BuildChurnScenario(ChurnFlap, topo)
	if err != nil {
		t.Fatal(err)
	}
	if len(flap.Steps) != 4 {
		t.Fatalf("flap has %d steps, want 4", len(flap.Steps))
	}
	if flap.Steps[0].Faults.Canonical() != flap.Steps[2].Faults.Canonical() {
		t.Fatal("flap steps 0 and 2 should share an overlay identity")
	}
	if _, err := r.BuildChurnScenario("no-such-scenario", topo); err == nil {
		t.Fatal("unknown churn scenario accepted")
	}
}
