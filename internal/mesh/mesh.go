package mesh

import (
	"fmt"
	"sort"
	"strings"
)

// Mesh is an n-dimensional logical array of devices sliced from a topology
// (GSPMD's definition, §2.2). Devices is the row-major flattening of the
// logical array; the same physical devices can be viewed under different
// shapes.
type Mesh struct {
	// Topo is the topology the devices live on.
	Topo Topology
	// Shape is the logical extent of each mesh dimension.
	Shape []int
	// Devices holds the physical device index at each logical position, in
	// row-major order. len(Devices) == product(Shape).
	Devices []int
}

// NewMesh validates and builds a mesh over explicit device indices.
func NewMesh(c Topology, shape []int, devices []int) (*Mesh, error) {
	if c == nil {
		return nil, fmt.Errorf("mesh: nil topology")
	}
	if len(shape) == 0 {
		return nil, fmt.Errorf("mesh: mesh must have at least one dimension")
	}
	n := 1
	for i, d := range shape {
		if d <= 0 {
			return nil, fmt.Errorf("mesh: dimension %d has non-positive extent %d", i, d)
		}
		n *= d
	}
	if len(devices) != n {
		return nil, fmt.Errorf("mesh: shape %v needs %d devices, got %d", shape, n, len(devices))
	}
	seen := make(map[int]bool, n)
	for _, d := range devices {
		if !c.ValidDevice(d) {
			return nil, fmt.Errorf("mesh: device %d outside topology with %d devices", d, c.NumDevices())
		}
		if seen[d] {
			return nil, fmt.Errorf("mesh: duplicate device %d", d)
		}
		seen[d] = true
	}
	return &Mesh{
		Topo:    c,
		Shape:   append([]int(nil), shape...),
		Devices: append([]int(nil), devices...),
	}, nil
}

// sliceTopology builds a mesh from a contiguous run of devices starting at
// firstDevice, laid out row-major over shape. This is how pipeline stages
// carve meshes out of a topology (§2.1); every Topology implementation's
// Slice method delegates here.
func sliceTopology(t Topology, shape []int, firstDevice int) (*Mesh, error) {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			return nil, fmt.Errorf("mesh: non-positive extent in shape %v", shape)
		}
		n *= d
	}
	devices := make([]int, n)
	for i := range devices {
		devices[i] = firstDevice + i
	}
	return NewMesh(t, shape, devices)
}

// Slice builds a mesh from a contiguous run of cluster devices starting at
// firstDevice, laid out row-major over shape.
func (c *Cluster) Slice(shape []int, firstDevice int) (*Mesh, error) {
	return sliceTopology(c, shape, firstDevice)
}

// Rank returns the number of logical mesh dimensions.
func (m *Mesh) Rank() int { return len(m.Shape) }

// NumDevices returns the number of devices in the mesh.
func (m *Mesh) NumDevices() int { return len(m.Devices) }

// flatIndex converts logical coordinates to the row-major position.
func (m *Mesh) flatIndex(coord []int) (int, error) {
	if len(coord) != len(m.Shape) {
		return 0, fmt.Errorf("mesh: coordinate rank %d != mesh rank %d", len(coord), len(m.Shape))
	}
	idx := 0
	for i, c := range coord {
		if c < 0 || c >= m.Shape[i] {
			return 0, fmt.Errorf("mesh: coordinate %v outside shape %v", coord, m.Shape)
		}
		idx = idx*m.Shape[i] + c
	}
	return idx, nil
}

// DeviceAt returns the physical device at logical coordinates.
func (m *Mesh) DeviceAt(coord ...int) (int, error) {
	idx, err := m.flatIndex(coord)
	if err != nil {
		return 0, err
	}
	return m.Devices[idx], nil
}

// CoordOf returns the logical coordinates of the i-th mesh position
// (row-major).
func (m *Mesh) CoordOf(flat int) []int {
	coord := make([]int, len(m.Shape))
	for i := len(m.Shape) - 1; i >= 0; i-- {
		coord[i] = flat % m.Shape[i]
		flat /= m.Shape[i]
	}
	return coord
}

// Hosts returns the sorted set of host indices the mesh spans.
func (m *Mesh) Hosts() []int {
	seen := map[int]bool{}
	var hosts []int
	for _, d := range m.Devices {
		h := m.Topo.HostOf(d)
		if !seen[h] {
			seen[h] = true
			hosts = append(hosts, h)
		}
	}
	sort.Ints(hosts)
	return hosts
}

// DevicesByHost groups the mesh's devices by host, sorted by host then
// device index.
func (m *Mesh) DevicesByHost() map[int][]int {
	out := map[int][]int{}
	for _, d := range m.Devices {
		h := m.Topo.HostOf(d)
		out[h] = append(out[h], d)
	}
	for h := range out {
		sort.Ints(out[h])
	}
	return out
}

// Contains reports whether the mesh includes the physical device.
func (m *Mesh) Contains(device int) bool {
	for _, d := range m.Devices {
		if d == device {
			return true
		}
	}
	return false
}

// Disjoint reports whether two meshes share no devices. Cross-mesh
// resharding is only defined between disjoint meshes (§2.2).
func Disjoint(a, b *Mesh) bool {
	set := make(map[int]bool, len(a.Devices))
	for _, d := range a.Devices {
		set[d] = true
	}
	for _, d := range b.Devices {
		if set[d] {
			return false
		}
	}
	return true
}

// Reshape returns a new logical view of the same devices under a different
// shape (e.g. a (2,2) mesh viewed as (1,4)).
func (m *Mesh) Reshape(shape []int) (*Mesh, error) {
	return NewMesh(m.Topo, shape, m.Devices)
}

func (m *Mesh) String() string {
	dims := make([]string, len(m.Shape))
	for i, d := range m.Shape {
		dims[i] = fmt.Sprintf("%d", d)
	}
	return fmt.Sprintf("mesh(%s)%v", strings.Join(dims, "x"), m.Devices)
}
