package mesh

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// MaxRegistryHosts bounds the host count a registry build accepts: preset
// topologies allocate per-host state, and the registry fronts
// client-supplied parameters (command lines, the plan-serving API), so an
// absurd count must fail before it allocates.
const MaxRegistryHosts = 4096

// TopologyParams parameterize a named topology preset. The zero value asks
// the preset for its defaults.
type TopologyParams struct {
	// Hosts is the host count; 0 means the preset's default.
	Hosts int
	// Oversubscription is the fabric oversubscription factor for presets
	// with a shared switch fabric; 0 means non-oversubscribed (1:1).
	Oversubscription float64
}

// TopologyBuilder constructs a topology from parameters.
type TopologyBuilder func(p TopologyParams) (Topology, error)

// FaultScenarioBuilder constructs a named fault overlay for a concrete
// topology — scenarios are parameterized by the hardware they degrade
// (which link exists, which host is last) rather than being fixed lists.
type FaultScenarioBuilder func(t Topology) (FaultSet, error)

// Registry maps preset names to topology builders, so callers — command
// lines, config files, and the plan-serving API — can name hardware
// ("p3", "dgx-a100", "mixed") instead of constructing it. It also maps
// fault-scenario names ("link-down", "brownout", "straggler") to fault
// overlays, so the same callers can name degradations. A Registry is safe
// for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	builders map[string]TopologyBuilder
	faults   map[string]FaultScenarioBuilder
	churns   map[string]ChurnScenarioBuilder
}

// ChurnScenarioBuilder constructs a named churn timeline for a concrete
// topology — like fault scenarios, timelines are parameterized by the
// hardware they degrade rather than being fixed lists.
type ChurnScenarioBuilder func(t Topology) (ChurnTimeline, error)

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		builders: map[string]TopologyBuilder{},
		faults:   map[string]FaultScenarioBuilder{},
		churns:   map[string]ChurnScenarioBuilder{},
	}
}

// Register adds a named builder. Names are case-insensitive. Registering
// an empty name, a nil builder, or a duplicate name is an error.
func (r *Registry) Register(name string, b TopologyBuilder) error {
	name = strings.ToLower(strings.TrimSpace(name))
	if name == "" {
		return fmt.Errorf("mesh: registry: empty topology name")
	}
	if b == nil {
		return fmt.Errorf("mesh: registry: nil builder for %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.builders[name]; ok {
		return fmt.Errorf("mesh: registry: topology %q already registered", name)
	}
	r.builders[name] = b
	return nil
}

// Build constructs the named topology. Unknown names report the available
// presets.
func (r *Registry) Build(name string, p TopologyParams) (Topology, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	r.mu.RLock()
	b, ok := r.builders[key]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("mesh: unknown topology %q (have %s)", name, strings.Join(r.Names(), ", "))
	}
	if p.Hosts < 0 {
		return nil, fmt.Errorf("mesh: negative host count %d", p.Hosts)
	}
	if p.Hosts > MaxRegistryHosts {
		return nil, fmt.Errorf("mesh: host count %d exceeds the registry bound %d", p.Hosts, MaxRegistryHosts)
	}
	if p.Oversubscription < 0 {
		return nil, fmt.Errorf("mesh: negative oversubscription %g", p.Oversubscription)
	}
	return b(p)
}

// Names returns the registered preset names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.builders))
	for n := range r.builders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RegisterFaultScenario adds a named fault-scenario builder. Names are
// case-insensitive; empty names, nil builders and duplicates are errors.
func (r *Registry) RegisterFaultScenario(name string, b FaultScenarioBuilder) error {
	name = strings.ToLower(strings.TrimSpace(name))
	if name == "" {
		return fmt.Errorf("mesh: registry: empty fault scenario name")
	}
	if b == nil {
		return fmt.Errorf("mesh: registry: nil fault scenario builder for %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.faults == nil {
		r.faults = map[string]FaultScenarioBuilder{}
	}
	if _, ok := r.faults[name]; ok {
		return fmt.Errorf("mesh: registry: fault scenario %q already registered", name)
	}
	r.faults[name] = b
	return nil
}

// BuildFaultScenario constructs the named fault overlay for a concrete
// topology. Unknown names report the available scenarios.
func (r *Registry) BuildFaultScenario(name string, t Topology) (FaultSet, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	r.mu.RLock()
	b, ok := r.faults[key]
	r.mu.RUnlock()
	if !ok {
		return FaultSet{}, fmt.Errorf("mesh: unknown fault scenario %q (have %s)", name, strings.Join(r.FaultScenarioNames(), ", "))
	}
	if t == nil {
		return FaultSet{}, fmt.Errorf("mesh: fault scenario %q needs a topology", name)
	}
	return b(t)
}

// FaultScenarioNames returns the registered scenario names, sorted.
func (r *Registry) FaultScenarioNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.faults))
	for n := range r.faults {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RegisterChurnScenario adds a named churn-timeline builder. Names are
// case-insensitive; empty names, nil builders and duplicates are errors.
func (r *Registry) RegisterChurnScenario(name string, b ChurnScenarioBuilder) error {
	name = strings.ToLower(strings.TrimSpace(name))
	if name == "" {
		return fmt.Errorf("mesh: registry: empty churn scenario name")
	}
	if b == nil {
		return fmt.Errorf("mesh: registry: nil churn scenario builder for %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.churns == nil {
		r.churns = map[string]ChurnScenarioBuilder{}
	}
	if _, ok := r.churns[name]; ok {
		return fmt.Errorf("mesh: registry: churn scenario %q already registered", name)
	}
	r.churns[name] = b
	return nil
}

// BuildChurnScenario constructs the named churn timeline for a concrete
// topology and validates every step's overlay against it. Unknown names
// report the available scenarios.
func (r *Registry) BuildChurnScenario(name string, t Topology) (ChurnTimeline, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	r.mu.RLock()
	b, ok := r.churns[key]
	r.mu.RUnlock()
	if !ok {
		return ChurnTimeline{}, fmt.Errorf("mesh: unknown churn scenario %q (have %s)", name, strings.Join(r.ChurnScenarioNames(), ", "))
	}
	if t == nil {
		return ChurnTimeline{}, fmt.Errorf("mesh: churn scenario %q needs a topology", name)
	}
	tl, err := b(t)
	if err != nil {
		return ChurnTimeline{}, err
	}
	return tl, tl.Validate(t)
}

// ChurnScenarioNames returns the registered churn scenario names, sorted.
func (r *Registry) ChurnScenarioNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.churns))
	for n := range r.churns {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Preset names of DefaultRegistry.
const (
	// TopologyP3 is the paper's homogeneous AWS p3 testbed.
	TopologyP3 = "p3"
	// TopologyDGXA100 is a homogeneous DGX-A100/InfiniBand cluster.
	TopologyDGXA100 = "dgx-a100"
	// TopologyMixed mixes p3 and DGX-A100 hosts on one fabric.
	TopologyMixed = "mixed"
)

// Fault scenario names of DefaultRegistry.
const (
	// FaultLinkDown downs the link between hosts 0 and 1; traffic detours
	// through the best surviving relay (needs at least 3 hosts).
	FaultLinkDown = "link-down"
	// FaultBrownout halves every inter-host link's bandwidth and adds 50%
	// to its latency — an oversubscribed spine at peak load.
	FaultBrownout = "brownout"
	// FaultStraggler makes the last host a straggler: NIC at a quarter
	// speed, intra-host links at half.
	FaultStraggler = "straggler"
)

// Churn scenario names of DefaultRegistry.
const (
	// ChurnFlap flaps the 0-1 link: down, healed, down again, healed
	// (needs at least 3 hosts for the detour). Healing back to an earlier
	// overlay revisits its identity — the cache-hit case.
	ChurnFlap = "flap"
	// ChurnCascade compounds faults: link down, then link down plus a
	// straggler, then the link heals leaving the straggler, then healthy.
	ChurnCascade = "cascade"
	// ChurnBrownoutRecovery browns out every link, partially recovers to
	// three-quarter bandwidth, then heals.
	ChurnBrownoutRecovery = "brownout-recovery"
)

// maxBrownoutHosts bounds the quadratic link-fault expansion of the
// brownout scenario; the registry fronts client-supplied host counts.
const maxBrownoutHosts = 64

// DefaultRegistry returns a fresh registry holding the built-in presets:
//
//   - "p3": the paper's testbed, hosts x 4 V100 (default 2 hosts); "dgx"
//     and "dgx-a100" ignore Oversubscription (their fabrics are 1:1).
//   - "dgx-a100" (alias "dgx"): DGX-A100 nodes, 8 GPUs + 8 HDR-200 NICs
//     per host (default 2 hosts).
//   - "mixed": half p3 / half DGX-A100 hosts (at least one of each,
//     default 3 hosts) with the given fabric oversubscription.
func DefaultRegistry() *Registry {
	r := NewRegistry()
	mustRegister := func(name string, b TopologyBuilder) {
		if err := r.Register(name, b); err != nil {
			panic(err)
		}
	}
	mustRegister(TopologyP3, func(p TopologyParams) (Topology, error) {
		return AWSP3Cluster(hostsOrDefault(p.Hosts, 2)), nil
	})
	dgx := func(p TopologyParams) (Topology, error) {
		return DGXA100Cluster(hostsOrDefault(p.Hosts, 2)), nil
	}
	mustRegister(TopologyDGXA100, dgx)
	mustRegister("dgx", dgx)
	mustRegister(TopologyMixed, func(p TopologyParams) (Topology, error) {
		hosts := hostsOrDefault(p.Hosts, 3)
		if hosts < 2 {
			return nil, fmt.Errorf("mesh: mixed topology needs at least 2 hosts, got %d", hosts)
		}
		oversub := p.Oversubscription
		if oversub == 0 {
			oversub = 1
		}
		p3 := hosts / 2
		return MixedP3DGXCluster(p3, hosts-p3, oversub), nil
	})
	mustRegisterFaults := func(name string, b FaultScenarioBuilder) {
		if err := r.RegisterFaultScenario(name, b); err != nil {
			panic(err)
		}
	}
	mustRegisterFaults(FaultLinkDown, func(t Topology) (FaultSet, error) {
		if t.HostCount() < 3 {
			return FaultSet{}, fmt.Errorf("mesh: %s needs at least 3 hosts for a detour, topology has %d", FaultLinkDown, t.HostCount())
		}
		return FaultSet{Links: []LinkFault{{A: 0, B: 1, Down: true}}}, nil
	})
	mustRegisterFaults(FaultBrownout, func(t Topology) (FaultSet, error) {
		hosts := t.HostCount()
		if hosts < 2 {
			return FaultSet{}, fmt.Errorf("mesh: %s needs at least 2 hosts", FaultBrownout)
		}
		if hosts > maxBrownoutHosts {
			return FaultSet{}, fmt.Errorf("mesh: %s faults every link pair; %d hosts exceed the bound %d", FaultBrownout, hosts, maxBrownoutHosts)
		}
		var fs FaultSet
		for a := 0; a < hosts; a++ {
			for b := a + 1; b < hosts; b++ {
				fs.Links = append(fs.Links, LinkFault{
					A: a, B: b,
					BandwidthScale: 0.5,
					ExtraLatency:   0.5 * t.InterLatency(a, b),
				})
			}
		}
		return fs, nil
	})
	mustRegisterFaults(FaultStraggler, func(t Topology) (FaultSet, error) {
		return FaultSet{Hosts: []HostFault{{Host: t.HostCount() - 1, NICScale: 0.25, IntraScale: 0.5}}}, nil
	})
	mustRegisterChurn := func(name string, b ChurnScenarioBuilder) {
		if err := r.RegisterChurnScenario(name, b); err != nil {
			panic(err)
		}
	}
	mustRegisterChurn(ChurnFlap, func(t Topology) (ChurnTimeline, error) {
		linkDown, err := r.BuildFaultScenario(FaultLinkDown, t)
		if err != nil {
			return ChurnTimeline{}, err
		}
		return ChurnTimeline{Steps: []ChurnStep{
			{At: 0, Faults: linkDown},
			{At: 1 * time.Second},
			{At: 2 * time.Second, Faults: linkDown},
			{At: 3 * time.Second},
		}}, nil
	})
	mustRegisterChurn(ChurnCascade, func(t Topology) (ChurnTimeline, error) {
		linkDown, err := r.BuildFaultScenario(FaultLinkDown, t)
		if err != nil {
			return ChurnTimeline{}, err
		}
		straggler, err := r.BuildFaultScenario(FaultStraggler, t)
		if err != nil {
			return ChurnTimeline{}, err
		}
		both := FaultSet{Links: linkDown.Links, Hosts: straggler.Hosts}
		return ChurnTimeline{Steps: []ChurnStep{
			{At: 0, Faults: linkDown},
			{At: 1 * time.Second, Faults: both},
			{At: 2 * time.Second, Faults: straggler},
			{At: 3 * time.Second},
		}}, nil
	})
	mustRegisterChurn(ChurnBrownoutRecovery, func(t Topology) (ChurnTimeline, error) {
		brownout, err := r.BuildFaultScenario(FaultBrownout, t)
		if err != nil {
			return ChurnTimeline{}, err
		}
		// Partial recovery: the same links at three-quarter bandwidth with
		// the extra latency gone, then fully healed.
		partial := FaultSet{Links: append([]LinkFault(nil), brownout.Links...)}
		for i := range partial.Links {
			partial.Links[i].BandwidthScale = 0.75
			partial.Links[i].ExtraLatency = 0
		}
		return ChurnTimeline{Steps: []ChurnStep{
			{At: 0, Faults: brownout},
			{At: 1 * time.Second, Faults: partial},
			{At: 2 * time.Second},
		}}, nil
	})
	return r
}

func hostsOrDefault(hosts, def int) int {
	if hosts == 0 {
		return def
	}
	return hosts
}

// ParseSlice parses the mesh notation shared by the CLIs and the
// plan-serving API — an n-dimensional shape and a first device, e.g.
// "2x4@0" or "2x2x2@8" — and carves the mesh out of the topology.
func ParseSlice(t Topology, s string) (*Mesh, error) {
	at := strings.Split(s, "@")
	if len(at) != 2 {
		return nil, fmt.Errorf("mesh: %q must look like 2x4@0", s)
	}
	first, err := strconv.Atoi(at[1])
	if err != nil {
		return nil, fmt.Errorf("mesh: bad first device in %q: %v", s, err)
	}
	var shape []int
	for _, p := range strings.Split(at[0], "x") {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("mesh: bad shape in %q: %v", s, err)
		}
		shape = append(shape, v)
	}
	return t.Slice(shape, first)
}
