package mesh

import (
	"reflect"
	"strings"
	"testing"
)

// Both cluster types must satisfy the pluggable hardware interface.
var (
	_ Topology = (*Cluster)(nil)
	_ Topology = (*HeteroCluster)(nil)
)

func TestNewHeteroClusterValidation(t *testing.T) {
	if _, err := NewHeteroCluster(nil, 0, 1); err == nil {
		t.Error("empty host list should fail")
	}
	bad := []HostSpec{{Devices: 0, IntraBandwidth: 1, NICBandwidth: 1}}
	if _, err := NewHeteroCluster(bad, 0, 1); err == nil {
		t.Error("zero devices should fail")
	}
	bad = []HostSpec{{Devices: 2, IntraBandwidth: 0, NICBandwidth: 1}}
	if _, err := NewHeteroCluster(bad, 0, 1); err == nil {
		t.Error("zero intra bandwidth should fail")
	}
	ok := []HostSpec{{Devices: 2, IntraBandwidth: 1, NICBandwidth: 1}}
	if _, err := NewHeteroCluster(ok, -1, 1); err == nil {
		t.Error("negative inter latency should fail")
	}
	if _, err := NewHeteroCluster(ok, 0, 0.5); err == nil {
		t.Error("oversubscription < 1 should fail")
	}
	hc, err := NewHeteroCluster(ok, 0, 0) // 0 defaults to 1
	if err != nil {
		t.Fatal(err)
	}
	if hc.Oversubscription != 1 {
		t.Errorf("zero oversubscription should default to 1, got %g", hc.Oversubscription)
	}
}

func TestDGXA100Preset(t *testing.T) {
	c := DGXA100Cluster(2)
	if c.HostCount() != 2 || c.NumDevices() != 16 {
		t.Errorf("DGX cluster = %d hosts, %d devices", c.HostCount(), c.NumDevices())
	}
	if c.NICCount(0) != 8 {
		t.Errorf("DGX NIC count = %d, want 8", c.NICCount(0))
	}
	if c.NICBandwidth(0)*8 != 200e9 {
		t.Errorf("DGX NIC = %g bits/s, want 200e9", c.NICBandwidth(0)*8)
	}
	if c.IntraBandwidth(0) <= c.NICBandwidth(0) {
		t.Error("NVSwitch must be faster than one NIC")
	}
	// An NVSwitch-class node must beat the p3 testbed on every tier.
	p3 := AWSP3Cluster(2)
	if c.IntraBandwidth(0) <= p3.IntraBandwidth(0) || c.NICBandwidth(0) <= p3.NICBandwidth(0) {
		t.Error("DGX-A100 preset must outclass the p3 preset")
	}
}

func TestMixedClusterHostMapping(t *testing.T) {
	// Hosts: 0-1 are p3 (4 devices), 2 is DGX (8 devices).
	c := MixedP3DGXCluster(2, 1, 1)
	if c.NumDevices() != 16 {
		t.Fatalf("NumDevices = %d, want 16", c.NumDevices())
	}
	for dev, want := range map[int]int{0: 0, 3: 0, 4: 1, 7: 1, 8: 2, 15: 2} {
		if got := c.HostOf(dev); got != want {
			t.Errorf("HostOf(%d) = %d, want %d", dev, got, want)
		}
	}
	if !reflect.DeepEqual(c.DevicesOnHost(2), []int{8, 9, 10, 11, 12, 13, 14, 15}) {
		t.Errorf("DevicesOnHost(2) = %v", c.DevicesOnHost(2))
	}
	if !c.SameHost(8, 15) || c.SameHost(7, 8) {
		t.Error("SameHost wrong across the p3/DGX boundary")
	}
	if c.ValidDevice(16) || c.ValidDevice(-1) || !c.ValidDevice(15) {
		t.Error("ValidDevice wrong")
	}
}

func TestInterBandwidthOversubscription(t *testing.T) {
	c := MixedP3DGXCluster(1, 1, 2)
	// Cross-tier: bottlenecked by the p3 NIC, halved by 2:1 oversubscription.
	want := P3HostBandwidth / 2
	if got := c.InterBandwidth(0, 1); got != want {
		t.Errorf("InterBandwidth(p3, dgx) = %g, want %g", got, want)
	}
	if got := c.InterBandwidth(1, 0); got != want {
		t.Errorf("InterBandwidth must be symmetric, got %g", got)
	}
	// DGX-to-DGX keeps the fast NICs (modulo oversubscription).
	c2 := MixedP3DGXCluster(1, 2, 1)
	if got := c2.InterBandwidth(1, 2); got != DGXA100NICBandwidth {
		t.Errorf("InterBandwidth(dgx, dgx) = %g, want %g", got, DGXA100NICBandwidth)
	}
}

func TestHeteroSliceAcrossHosts(t *testing.T) {
	c := MixedP3DGXCluster(1, 1, 1)
	// A (2,4) mesh spanning the p3 host and half the DGX host.
	m, err := c.Slice([]int{2, 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.Hosts(), []int{0, 1}) {
		t.Errorf("Hosts = %v", m.Hosts())
	}
	byHost := m.DevicesByHost()
	if !reflect.DeepEqual(byHost[1], []int{4, 5, 6, 7}) {
		t.Errorf("DevicesByHost[1] = %v", byHost[1])
	}
	if _, err := c.Slice([]int{2, 4}, 10); err == nil {
		t.Error("slice past the last device should fail")
	}
}

func TestFingerprints(t *testing.T) {
	if AWSP3Cluster(2).Fingerprint() != AWSP3Cluster(2).Fingerprint() {
		t.Error("equal clusters must share a fingerprint")
	}
	if AWSP3Cluster(2).Fingerprint() == AWSP3Cluster(3).Fingerprint() {
		t.Error("different host counts must differ")
	}
	if DGXA100Cluster(2).Fingerprint() == DGXA100Cluster(3).Fingerprint() {
		t.Error("different hetero host counts must differ")
	}
	if AWSP3Cluster(2).Fingerprint() == DGXA100Cluster(2).Fingerprint() {
		t.Error("p3 and DGX must differ")
	}
	a := MixedP3DGXCluster(1, 1, 1)
	b := MixedP3DGXCluster(1, 1, 2)
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("oversubscription must be part of the fingerprint")
	}
}

func TestHostFingerprintRecognisesInterchangeableHosts(t *testing.T) {
	c := MixedP3DGXCluster(2, 2, 1)
	if HostFingerprint(c, 0) != HostFingerprint(c, 1) {
		t.Error("the two p3 hosts must be interchangeable")
	}
	if HostFingerprint(c, 2) != HostFingerprint(c, 3) {
		t.Error("the two DGX hosts must be interchangeable")
	}
	if HostFingerprint(c, 0) == HostFingerprint(c, 2) {
		t.Error("a p3 host must not match a DGX host")
	}
}

// uncomparableTopo embeds a topology inside an uncomparable struct value,
// modelling a third-party implementation that would make a bare interface
// comparison panic.
type uncomparableTopo struct {
	*HeteroCluster
	pad []int
}

func TestSameTopology(t *testing.T) {
	a, b := AWSP3Cluster(2), AWSP3Cluster(2)
	if !SameTopology(a, a) {
		t.Error("a topology must match itself")
	}
	if !SameTopology(a, b) {
		t.Error("independently built identical topologies must match by fingerprint")
	}
	if SameTopology(a, AWSP3Cluster(3)) {
		t.Error("different host counts must not match")
	}
	if SameTopology(a, nil) || !SameTopology(nil, nil) {
		t.Error("nil handling wrong")
	}
	// Uncomparable implementations must not panic and fall back to
	// fingerprint equality.
	u1 := uncomparableTopo{DGXA100Cluster(2), []int{1}}
	u2 := uncomparableTopo{DGXA100Cluster(2), []int{2}}
	if !SameTopology(u1, u2) {
		t.Error("equal-fingerprint uncomparable topologies must match")
	}
	if SameTopology(u1, uncomparableTopo{DGXA100Cluster(3), nil}) {
		t.Error("different-fingerprint uncomparable topologies must not match")
	}
}

func TestClusterStringReportsNICCount(t *testing.T) {
	c := AWSP3Cluster(2)
	if strings.Contains(c.String(), "NICs") {
		t.Errorf("single-NIC cluster should not report a NIC count: %s", c)
	}
	multi := c.WithNICs(4)
	if !strings.Contains(multi.String(), "4 NICs") {
		t.Errorf("String() hides the NIC count: %s", multi)
	}
}
