package mesh

import (
	"reflect"
	"testing"
)

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(0, 4, 1, 1, 0, 0); err == nil {
		t.Error("zero hosts should fail")
	}
	if _, err := NewCluster(2, 0, 1, 1, 0, 0); err == nil {
		t.Error("zero devices per host should fail")
	}
	if _, err := NewCluster(2, 4, 0, 1, 0, 0); err == nil {
		t.Error("zero intra bandwidth should fail")
	}
	if _, err := NewCluster(2, 4, 1, 1, -1, 0); err == nil {
		t.Error("negative latency should fail")
	}
	c, err := NewCluster(2, 4, 100, 10, 1e-6, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumDevices() != 8 {
		t.Errorf("NumDevices = %d", c.NumDevices())
	}
}

func TestAWSP3Cluster(t *testing.T) {
	c := AWSP3Cluster(3)
	if c.NumHosts != 3 || c.DevicesPerHost != 4 {
		t.Errorf("p3 cluster = %v", c)
	}
	if c.HostBandwidth*8 != 10e9 {
		t.Errorf("NIC bandwidth = %g bits/s, want 10e9", c.HostBandwidth*8)
	}
	if c.IntraHostBandwidth <= c.HostBandwidth {
		t.Error("NVLink must be faster than the NIC")
	}
}

func TestClusterHostMapping(t *testing.T) {
	c := AWSP3Cluster(2)
	if c.HostOf(0) != 0 || c.HostOf(3) != 0 || c.HostOf(4) != 1 || c.HostOf(7) != 1 {
		t.Error("HostOf mapping wrong")
	}
	if !c.SameHost(0, 3) || c.SameHost(3, 4) {
		t.Error("SameHost wrong")
	}
	if !reflect.DeepEqual(c.DevicesOnHost(1), []int{4, 5, 6, 7}) {
		t.Errorf("DevicesOnHost(1) = %v", c.DevicesOnHost(1))
	}
	if c.ValidDevice(8) || c.ValidDevice(-1) || !c.ValidDevice(7) {
		t.Error("ValidDevice wrong")
	}
}

func TestNewMeshValidation(t *testing.T) {
	c := AWSP3Cluster(2)
	if _, err := NewMesh(nil, []int{2}, []int{0, 1}); err == nil {
		t.Error("nil cluster should fail")
	}
	if _, err := NewMesh(c, nil, nil); err == nil {
		t.Error("empty shape should fail")
	}
	if _, err := NewMesh(c, []int{2, 0}, nil); err == nil {
		t.Error("zero extent should fail")
	}
	if _, err := NewMesh(c, []int{2, 2}, []int{0, 1, 2}); err == nil {
		t.Error("wrong device count should fail")
	}
	if _, err := NewMesh(c, []int{2}, []int{0, 0}); err == nil {
		t.Error("duplicate devices should fail")
	}
	if _, err := NewMesh(c, []int{2}, []int{0, 99}); err == nil {
		t.Error("out-of-cluster device should fail")
	}
}

func TestMeshSliceAndCoords(t *testing.T) {
	c := AWSP3Cluster(2)
	// A (2,2) mesh [[0,1],[2,3]] as in Figure 2's MeshA.
	m, err := c.Slice([]int{2, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := m.DeviceAt(0, 1); d != 1 {
		t.Errorf("DeviceAt(0,1) = %d", d)
	}
	if d, _ := m.DeviceAt(1, 0); d != 2 {
		t.Errorf("DeviceAt(1,0) = %d", d)
	}
	if _, err := m.DeviceAt(2, 0); err == nil {
		t.Error("out-of-range coordinate should fail")
	}
	if _, err := m.DeviceAt(0); err == nil {
		t.Error("rank mismatch should fail")
	}
	if !reflect.DeepEqual(m.CoordOf(3), []int{1, 1}) {
		t.Errorf("CoordOf(3) = %v", m.CoordOf(3))
	}
}

func TestMeshHosts(t *testing.T) {
	c := AWSP3Cluster(3)
	// (2,4): spans hosts 0 and 1.
	m, _ := c.Slice([]int{2, 4}, 0)
	if !reflect.DeepEqual(m.Hosts(), []int{0, 1}) {
		t.Errorf("Hosts = %v", m.Hosts())
	}
	byHost := m.DevicesByHost()
	if !reflect.DeepEqual(byHost[1], []int{4, 5, 6, 7}) {
		t.Errorf("DevicesByHost[1] = %v", byHost[1])
	}
}

func TestMeshDisjoint(t *testing.T) {
	c := AWSP3Cluster(4)
	a, _ := c.Slice([]int{2, 2}, 0)
	b, _ := c.Slice([]int{2, 2}, 4)
	overlapping, _ := c.Slice([]int{2, 2}, 2)
	if !Disjoint(a, b) {
		t.Error("meshes on different hosts should be disjoint")
	}
	if Disjoint(a, overlapping) {
		t.Error("meshes sharing devices should not be disjoint")
	}
}

func TestMeshReshape(t *testing.T) {
	c := AWSP3Cluster(1)
	m, _ := c.Slice([]int{2, 2}, 0)
	flat, err := m.Reshape([]int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := flat.DeviceAt(0, 3); d != 3 {
		t.Errorf("reshaped DeviceAt(0,3) = %d", d)
	}
	if _, err := m.Reshape([]int{3, 2}); err == nil {
		t.Error("reshape to wrong element count should fail")
	}
}

func TestMeshContains(t *testing.T) {
	c := AWSP3Cluster(2)
	m, _ := c.Slice([]int{1, 4}, 4)
	if !m.Contains(5) || m.Contains(3) {
		t.Error("Contains wrong")
	}
}

func TestStringers(t *testing.T) {
	c := AWSP3Cluster(2)
	if c.String() == "" {
		t.Error("cluster String empty")
	}
	m, _ := c.Slice([]int{1, 2}, 0)
	if m.String() == "" {
		t.Error("mesh String empty")
	}
}

func TestClusterNICs(t *testing.T) {
	c := AWSP3Cluster(2)
	if c.NICs() != 1 {
		t.Errorf("default NICs = %d, want 1", c.NICs())
	}
	c2 := c.WithNICs(4)
	if c2.NICs() != 4 || c.NICs() != 1 {
		t.Error("WithNICs must copy, not mutate")
	}
	if c.WithNICs(0).NICs() != 1 {
		t.Error("zero NICs should clamp to 1")
	}
}
