package mesh

import (
	"math/rand"
	"testing"
)

// FuzzFaultedOverlay drives random topologies and random fault sets
// through NewFaulted and checks the overlay's structural invariants:
//
//   - degradation is monotone: no bandwidth goes up, no latency down;
//   - structure delegates: host/device indexing identical to the base;
//   - identity is folded deterministically: building the overlay twice
//     (and with the fault list shuffled) yields one fingerprint, and the
//     empty overlay yields the base's.
func FuzzFaultedOverlay(f *testing.F) {
	for _, seed := range []int64{1, 2, 3, 7, 42, 99, 1234} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		hosts := 2 + rng.Intn(4)
		specs := make([]HostSpec, hosts)
		for h := range specs {
			specs[h] = HostSpec{
				Devices:        1 + rng.Intn(4),
				IntraBandwidth: float64(1+rng.Intn(16)) * 25e9,
				IntraLatency:   float64(rng.Intn(4)) * 1e-6,
				NICBandwidth:   float64(1+rng.Intn(8)) * 1.25e9,
				NICs:           1 + rng.Intn(3),
			}
		}
		base := MustHeteroCluster(specs, float64(rng.Intn(5))*10e-6, 1+float64(rng.Intn(3))*0.5)

		scales := []float64{0.25, 0.5, 0.75, 1}
		var fs FaultSet
		for a := 0; a < hosts; a++ {
			for b := a + 1; b < hosts; b++ {
				switch rng.Intn(4) {
				case 0:
					fs.Links = append(fs.Links, LinkFault{A: a, B: b, Down: true})
				case 1:
					fs.Links = append(fs.Links, LinkFault{
						A: a, B: b,
						BandwidthScale: scales[rng.Intn(3)],
						ExtraLatency:   float64(rng.Intn(3)) * 5e-6,
					})
				}
			}
		}
		for h := 0; h < hosts; h++ {
			if rng.Intn(3) == 0 {
				fs.Hosts = append(fs.Hosts, HostFault{
					Host:       h,
					NICScale:   scales[rng.Intn(len(scales))],
					IntraScale: scales[rng.Intn(3)],
				})
			}
		}

		fl, err := NewFaulted(base, fs)
		if err != nil {
			// Random overlays may isolate a host (all links down) or carry
			// a no-op host fault (both scales 1); rejection is the correct
			// outcome, and it must be deterministic.
			if _, err2 := NewFaulted(base, fs); err2 == nil || err2.Error() != err.Error() {
				t.Fatalf("rejection not deterministic: %v vs %v", err, err2)
			}
			t.Skip("overlay rejected")
		}

		// Monotone degradation everywhere.
		for h := 0; h < hosts; h++ {
			if fl.IntraBandwidth(h) > base.IntraBandwidth(h) || fl.NICBandwidth(h) > base.NICBandwidth(h) {
				t.Fatalf("host %d sped up under faults %q", h, fs.Canonical())
			}
			if fl.IntraLatency(h) != base.IntraLatency(h) || fl.NICCount(h) != base.NICCount(h) {
				t.Fatalf("host %d: overlay changed invariant fields", h)
			}
			for g := 0; g < hosts; g++ {
				if g == h {
					continue
				}
				if fl.InterBandwidth(h, g) > base.InterBandwidth(h, g) {
					t.Fatalf("link %d-%d sped up: %g > %g (faults %q)",
						h, g, fl.InterBandwidth(h, g), base.InterBandwidth(h, g), fs.Canonical())
				}
				if fl.InterLatency(h, g) < base.InterLatency(h, g) {
					t.Fatalf("link %d-%d latency dropped: %g < %g (faults %q)",
						h, g, fl.InterLatency(h, g), base.InterLatency(h, g), fs.Canonical())
				}
				if fl.InterBandwidth(h, g) <= 0 {
					t.Fatalf("link %d-%d degraded to non-positive bandwidth %g", h, g, fl.InterBandwidth(h, g))
				}
			}
		}

		// Structure delegates.
		if fl.NumDevices() != base.NumDevices() || fl.HostCount() != base.HostCount() {
			t.Fatal("overlay changed counts")
		}
		for d := 0; d < base.NumDevices(); d++ {
			if fl.HostOf(d) != base.HostOf(d) {
				t.Fatalf("device %d moved hosts", d)
			}
		}

		// Fingerprint identity: rebuilt and shuffled overlays agree.
		fl2, err := NewFaulted(base, fs)
		if err != nil {
			t.Fatal(err)
		}
		shuffled := FaultSet{
			Links: append([]LinkFault(nil), fs.Links...),
			Hosts: append([]HostFault(nil), fs.Hosts...),
		}
		rng.Shuffle(len(shuffled.Links), func(i, j int) { shuffled.Links[i], shuffled.Links[j] = shuffled.Links[j], shuffled.Links[i] })
		rng.Shuffle(len(shuffled.Hosts), func(i, j int) { shuffled.Hosts[i], shuffled.Hosts[j] = shuffled.Hosts[j], shuffled.Hosts[i] })
		fl3, err := NewFaulted(base, shuffled)
		if err != nil {
			t.Fatalf("shuffled overlay rejected: %v", err)
		}
		if fl.Fingerprint() != fl2.Fingerprint() || fl.Fingerprint() != fl3.Fingerprint() {
			t.Fatal("fingerprint depends on construction order")
		}
		if fs.Empty() != (fl.Fingerprint() == base.Fingerprint()) {
			t.Fatalf("fingerprint folding wrong: empty=%v base=%q faulted=%q", fs.Empty(), base.Fingerprint(), fl.Fingerprint())
		}
	})
}

// FuzzParseFaultSet throws arbitrary strings at the fault-spec parser: it
// must never panic, and anything it accepts must render a deterministic
// canonical form and survive overlay validation without panicking.
func FuzzParseFaultSet(f *testing.F) {
	for _, seed := range []string{
		"",
		"link:0-1:down",
		"link:0-1:bw=0.5,lat+=20e-6;host:3:nic=0.25,intra=0.5",
		"host:0:nic=0.5",
		"link:0-1:down;link:1-2:bw=0.75;host:2:intra=0.25",
		"link:9-9:warp=9",
		"host:-1:nic=2",
		";;;",
		"link:0-1:bw=NaN",
		"link:0-1:lat+=-5",
	} {
		f.Add(seed)
	}
	base := AWSP3Cluster(4)
	f.Fuzz(func(t *testing.T, spec string) {
		fs, err := ParseFaultSet(spec)
		if err != nil {
			return
		}
		if fs.Canonical() != fs.Canonical() {
			t.Fatal("canonical form not deterministic")
		}
		// Validation may reject (out-of-range hosts, NaN scales, no-op
		// faults) but must never panic, and acceptance must be stable.
		fl, err := NewFaulted(base, fs)
		if err != nil {
			return
		}
		fl2, err := NewFaulted(base, fs)
		if err != nil {
			t.Fatalf("second validation of an accepted overlay failed: %v", err)
		}
		if fl.Fingerprint() != fl2.Fingerprint() {
			t.Fatal("accepted overlay fingerprint not deterministic")
		}
	})
}
