package mesh

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// The degraded-topology scenario engine: a deterministic fault overlay on
// any Topology. Real fleets do not run on pristine clusters — links go
// down, spines brown out, one host's NIC firmware throttles — and a plan
// served for the healthy fabric can be badly wrong on the degraded one.
// Faulted decorates a base topology with a FaultSet so every layer above
// (netsim costs, the resharding planner, the plan cache, the serving API)
// sees the degraded hardware through the same Topology interface it
// already plans against, and the fault set is folded into Fingerprint so
// healthy and degraded plans can never share a cache entry.

// LinkFault degrades the inter-host link between hosts A and B (an
// unordered pair). Exactly one of two forms is valid:
//
//   - a degradation: BandwidthScale in (0, 1] (0 means unscaled) and/or
//     ExtraLatency >= 0 added to every transfer on the link;
//   - a down link: Down true, no scaling fields. Traffic detours through
//     the relay host with the best surviving two-hop path (the fabric
//     reroutes below the NICs, so the relay's NICs are not modelled as
//     occupied); a fault set that leaves any pair with no live detour is
//     rejected at NewFaulted.
type LinkFault struct {
	// A and B are the host indices of the link's endpoints.
	A, B int
	// Down marks the link down entirely.
	Down bool
	// BandwidthScale multiplies the link's effective bandwidth; (0, 1],
	// 0 means unscaled.
	BandwidthScale float64
	// ExtraLatency is added to the link's per-transfer latency, seconds.
	ExtraLatency float64
}

// HostFault marks one host a straggler: its NIC and/or intra-host
// bandwidth run below spec. NICScale also scales every cross-host path
// touching the host — the NIC is the bottleneck the fabric model already
// assumes.
type HostFault struct {
	// Host is the straggler's host index.
	Host int
	// NICScale multiplies the host's NIC bandwidth and every inter-host
	// bandwidth touching the host; (0, 1], 0 means unscaled.
	NICScale float64
	// IntraScale multiplies the host's intra-host (NVLink-class)
	// bandwidth; (0, 1], 0 means unscaled.
	IntraScale float64
}

// FaultSet is a deterministic overlay of degradations: down or degraded
// inter-host links plus straggler hosts. The zero value is the healthy
// overlay — wrapping a topology with it is a provable identity (same
// fingerprint, same timing, same cache keys).
type FaultSet struct {
	Links []LinkFault
	Hosts []HostFault
}

// Empty reports whether the overlay degrades nothing.
func (fs FaultSet) Empty() bool { return len(fs.Links) == 0 && len(fs.Hosts) == 0 }

// scaleOr returns s treating the zero value as "unscaled".
func scaleOr(s float64) float64 {
	if s == 0 {
		return 1
	}
	return s
}

// validScale reports whether a scale field is usable: zero (unscaled) or
// in (0, 1]. NaN and infinities are rejected.
func validScale(s float64) bool {
	return !math.IsNaN(s) && !math.IsInf(s, 0) && s >= 0 && s <= 1
}

// normalized returns a copy with link endpoints ordered A < B, links
// sorted by (A, B) and host faults sorted by host — the canonical form
// Canonical and Fingerprint render. It does not validate.
func (fs FaultSet) normalized() FaultSet {
	out := FaultSet{
		Links: append([]LinkFault(nil), fs.Links...),
		Hosts: append([]HostFault(nil), fs.Hosts...),
	}
	for i := range out.Links {
		if out.Links[i].A > out.Links[i].B {
			out.Links[i].A, out.Links[i].B = out.Links[i].B, out.Links[i].A
		}
	}
	sort.Slice(out.Links, func(i, j int) bool {
		if out.Links[i].A != out.Links[j].A {
			return out.Links[i].A < out.Links[j].A
		}
		return out.Links[i].B < out.Links[j].B
	})
	sort.Slice(out.Hosts, func(i, j int) bool { return out.Hosts[i].Host < out.Hosts[j].Host })
	return out
}

// Canonical renders the overlay's identity: the normalized fault list in
// a stable textual form. Two fault sets with equal canonical strings
// degrade any topology identically. The empty overlay renders "".
func (fs FaultSet) Canonical() string {
	if fs.Empty() {
		return ""
	}
	n := fs.normalized()
	var b strings.Builder
	for _, l := range n.Links {
		fmt.Fprintf(&b, "L%d-%d:", l.A, l.B)
		if l.Down {
			b.WriteString("down")
		} else {
			fmt.Fprintf(&b, "bw%g,lat%g", scaleOr(l.BandwidthScale), l.ExtraLatency)
		}
		b.WriteByte(';')
	}
	for _, h := range n.Hosts {
		fmt.Fprintf(&b, "H%d:nic%g,intra%g;", h.Host, scaleOr(h.NICScale), scaleOr(h.IntraScale))
	}
	return b.String()
}

// linkOverlay is the resolved per-link state of a Faulted topology.
type linkOverlay struct {
	down     bool
	scale    float64
	extraLat float64
	// detour* hold the precomputed two-hop reroute of a down link, one
	// value per direction (a->b, b->a) where a < b.
	detourBW  [2]float64
	detourLat [2]float64
}

// Faulted decorates a base Topology with a FaultSet. It implements
// Topology, so the netsim cost model, the resharding planner and the plan
// cache pick the degradation up with no changes: every transfer is timed
// against the degraded bandwidths and latencies, and CacheKey — built
// from host fingerprints and pairwise fabric properties — partitions
// healthy from degraded plans automatically. Fingerprint folds the fault
// set in, so SameTopology and topology-pinned sessions distinguish the
// overlay from its base; an empty FaultSet is a strict identity (same
// fingerprint, same timing).
//
// Degradations are monotone by construction: every scale is <= 1, every
// extra latency >= 0, and a down link's detour bandwidth is capped at the
// direct link's while its latency is floored at the direct link's — so no
// transfer is ever faster on the faulted topology than on its base.
//
// A Faulted is immutable after construction and safe for concurrent use.
type Faulted struct {
	base Topology
	fs   FaultSet // normalized
	// nicScale / intraScale hold the per-host straggler factors (1 when
	// unfaulted); indexed by host.
	nicScale   []float64
	intraScale []float64
	// links maps the normalized pair key of each faulted link to its
	// resolved overlay.
	links map[int64]*linkOverlay
}

// pairKey builds the unordered-pair map key.
func pairKey(a, b int) int64 {
	if a > b {
		a, b = b, a
	}
	return int64(a)<<32 | int64(b)
}

// NewFaulted validates the fault set against the base topology and builds
// the overlay. Host and link indices must exist, endpoints must differ,
// scales must be in (0, 1] (zero means unscaled), extra latencies must be
// non-negative, a down link may not also carry scaling fields, duplicate
// link or host faults are rejected, and every down link must leave a live
// two-hop detour. Wrapping an empty fault set is valid and is an exact
// identity.
func NewFaulted(base Topology, fs FaultSet) (*Faulted, error) {
	if base == nil {
		return nil, fmt.Errorf("mesh: faulted: nil base topology")
	}
	hosts := base.HostCount()
	fs = fs.normalized()
	f := &Faulted{
		base:       base,
		fs:         fs,
		nicScale:   make([]float64, hosts),
		intraScale: make([]float64, hosts),
		links:      make(map[int64]*linkOverlay, len(fs.Links)),
	}
	for h := range f.nicScale {
		f.nicScale[h] = 1
		f.intraScale[h] = 1
	}
	for _, hf := range fs.Hosts {
		if hf.Host < 0 || hf.Host >= hosts {
			return nil, fmt.Errorf("mesh: faulted: host fault on host %d of a %d-host topology", hf.Host, hosts)
		}
		if !validScale(hf.NICScale) || !validScale(hf.IntraScale) {
			return nil, fmt.Errorf("mesh: faulted: host %d scales must be in (0,1] (nic=%g intra=%g)", hf.Host, hf.NICScale, hf.IntraScale)
		}
		if f.nicScale[hf.Host] != 1 || f.intraScale[hf.Host] != 1 {
			return nil, fmt.Errorf("mesh: faulted: duplicate host fault on host %d", hf.Host)
		}
		if scaleOr(hf.NICScale) == 1 && scaleOr(hf.IntraScale) == 1 {
			return nil, fmt.Errorf("mesh: faulted: host fault on host %d degrades nothing", hf.Host)
		}
		f.nicScale[hf.Host] = scaleOr(hf.NICScale)
		f.intraScale[hf.Host] = scaleOr(hf.IntraScale)
	}
	for _, lf := range fs.Links {
		if lf.A < 0 || lf.A >= hosts || lf.B < 0 || lf.B >= hosts {
			return nil, fmt.Errorf("mesh: faulted: link fault %d-%d outside the %d-host topology", lf.A, lf.B, hosts)
		}
		if lf.A == lf.B {
			return nil, fmt.Errorf("mesh: faulted: link fault %d-%d is not an inter-host link", lf.A, lf.B)
		}
		if _, dup := f.links[pairKey(lf.A, lf.B)]; dup {
			return nil, fmt.Errorf("mesh: faulted: duplicate fault for link %d-%d", lf.A, lf.B)
		}
		ov := &linkOverlay{down: lf.Down, scale: scaleOr(lf.BandwidthScale), extraLat: lf.ExtraLatency}
		if lf.Down {
			if lf.BandwidthScale != 0 || lf.ExtraLatency != 0 {
				return nil, fmt.Errorf("mesh: faulted: down link %d-%d cannot also scale bandwidth or latency", lf.A, lf.B)
			}
		} else {
			if !validScale(lf.BandwidthScale) {
				return nil, fmt.Errorf("mesh: faulted: link %d-%d bandwidth scale %g must be in (0,1]", lf.A, lf.B, lf.BandwidthScale)
			}
			if math.IsNaN(lf.ExtraLatency) || math.IsInf(lf.ExtraLatency, 0) || lf.ExtraLatency < 0 {
				return nil, fmt.Errorf("mesh: faulted: link %d-%d extra latency %g must be finite and non-negative", lf.A, lf.B, lf.ExtraLatency)
			}
			if scaleOr(lf.BandwidthScale) == 1 && lf.ExtraLatency == 0 {
				return nil, fmt.Errorf("mesh: faulted: link fault %d-%d degrades nothing", lf.A, lf.B)
			}
		}
		f.links[pairKey(lf.A, lf.B)] = ov
	}
	// Resolve every down link's detour now, so queries stay lock-free. The
	// relay is chosen deterministically: best surviving bandwidth, then
	// lowest added latency, then lowest host index.
	for _, lf := range fs.Links {
		if !lf.Down {
			continue
		}
		ov := f.links[pairKey(lf.A, lf.B)]
		for dir, pair := range [2][2]int{{lf.A, lf.B}, {lf.B, lf.A}} {
			src, dst := pair[0], pair[1]
			bestBW, bestLat, found := 0.0, 0.0, false
			for c := 0; c < hosts; c++ {
				if c == src || c == dst || f.linkDown(src, c) || f.linkDown(c, dst) {
					continue
				}
				bw := f.liveInterBandwidth(src, c)
				if b2 := f.liveInterBandwidth(c, dst); b2 < bw {
					bw = b2
				}
				lat := f.liveInterLatency(src, c) + f.liveInterLatency(c, dst)
				if !found || bw > bestBW || bw == bestBW && lat < bestLat {
					bestBW, bestLat, found = bw, lat, true
				}
			}
			if !found {
				return nil, fmt.Errorf("mesh: faulted: down link %d-%d leaves hosts %d and %d with no live detour", lf.A, lf.B, src, dst)
			}
			// The detour can never beat the direct link it replaces: cap
			// its bandwidth at the (straggler-scaled) direct value and
			// floor its latency there, keeping degradations monotone on
			// any base topology.
			if direct := f.liveInterBandwidth(src, dst); direct < bestBW {
				bestBW = direct
			}
			if direct := f.base.InterLatency(src, dst); direct > bestLat {
				bestLat = direct
			}
			ov.detourBW[dir] = bestBW
			ov.detourLat[dir] = bestLat
		}
	}
	return f, nil
}

// MustFaulted is NewFaulted that panics on error; for fault sets valid by
// construction (e.g. registry scenarios on their intended presets).
func MustFaulted(base Topology, fs FaultSet) *Faulted {
	f, err := NewFaulted(base, fs)
	if err != nil {
		panic(err)
	}
	return f
}

// Base returns the wrapped topology.
func (f *Faulted) Base() Topology { return f.base }

// Faults returns the normalized fault set.
func (f *Faulted) Faults() FaultSet { return f.fs }

// linkDown reports whether the direct link between two hosts is down.
func (f *Faulted) linkDown(a, b int) bool {
	ov, ok := f.links[pairKey(a, b)]
	return ok && ov.down
}

// liveInterBandwidth is the degraded direct bandwidth of a link treated
// as up: base bandwidth times the link's scale times the slower
// endpoint's straggler NIC scale.
func (f *Faulted) liveInterBandwidth(src, dst int) float64 {
	bw := f.base.InterBandwidth(src, dst)
	if ov, ok := f.links[pairKey(src, dst)]; ok && !ov.down {
		bw *= ov.scale
	}
	if s := minScale(f.nicScale[src], f.nicScale[dst]); s < 1 {
		bw *= s
	}
	return bw
}

// liveInterLatency is the degraded direct latency of a link treated as up.
func (f *Faulted) liveInterLatency(src, dst int) float64 {
	lat := f.base.InterLatency(src, dst)
	if ov, ok := f.links[pairKey(src, dst)]; ok && !ov.down {
		lat += ov.extraLat
	}
	return lat
}

// Topology interface implementation: structural queries delegate to the
// base untouched (the overlay degrades timing, never shape), bandwidth
// and latency queries apply the overlay.

// HostCount returns the base host count.
func (f *Faulted) HostCount() int { return f.base.HostCount() }

// NumDevices returns the base device count.
func (f *Faulted) NumDevices() int { return f.base.NumDevices() }

// HostOf returns the host owning a device.
func (f *Faulted) HostOf(device int) int { return f.base.HostOf(device) }

// DevicesOnHost returns the device indices of one host.
func (f *Faulted) DevicesOnHost(host int) []int { return f.base.DevicesOnHost(host) }

// ValidDevice reports whether the device index exists.
func (f *Faulted) ValidDevice(device int) bool { return f.base.ValidDevice(device) }

// SameHost reports whether two devices share a host.
func (f *Faulted) SameHost(a, b int) bool { return f.base.SameHost(a, b) }

// IntraBandwidth is the base intra-host bandwidth times the host's
// straggler intra scale.
func (f *Faulted) IntraBandwidth(host int) float64 {
	return f.base.IntraBandwidth(host) * f.intraScale[host]
}

// IntraLatency returns the base intra-host latency (the overlay does not
// inflate intra-host latency).
func (f *Faulted) IntraLatency(host int) float64 { return f.base.IntraLatency(host) }

// NICBandwidth is the base NIC bandwidth times the host's straggler NIC
// scale.
func (f *Faulted) NICBandwidth(host int) float64 {
	return f.base.NICBandwidth(host) * f.nicScale[host]
}

// NICCount returns the base NIC count (faults degrade NICs, they do not
// remove them).
func (f *Faulted) NICCount(host int) int { return f.base.NICCount(host) }

// InterBandwidth is the degraded point-to-point bandwidth: the base value
// times the link's bandwidth scale and the slower endpoint's straggler
// NIC scale — or, for a down link, the precomputed two-hop detour.
func (f *Faulted) InterBandwidth(srcHost, dstHost int) float64 {
	if ov, ok := f.links[pairKey(srcHost, dstHost)]; ok && ov.down {
		return ov.detourBW[detourDir(srcHost, dstHost)]
	}
	bw := f.base.InterBandwidth(srcHost, dstHost)
	if ov, ok := f.links[pairKey(srcHost, dstHost)]; ok {
		bw *= ov.scale
	}
	if s := minScale(f.nicScale[srcHost], f.nicScale[dstHost]); s < 1 {
		bw *= s
	}
	return bw
}

// InterLatency is the degraded cross-host latency: base plus the link's
// extra latency — or, for a down link, the precomputed detour latency.
func (f *Faulted) InterLatency(srcHost, dstHost int) float64 {
	if ov, ok := f.links[pairKey(srcHost, dstHost)]; ok {
		if ov.down {
			return ov.detourLat[detourDir(srcHost, dstHost)]
		}
		return f.base.InterLatency(srcHost, dstHost) + ov.extraLat
	}
	return f.base.InterLatency(srcHost, dstHost)
}

// detourDir selects which precomputed direction a query uses: 0 for
// (min, max) order, 1 for the reverse.
func detourDir(src, dst int) int {
	if src < dst {
		return 0
	}
	return 1
}

func minScale(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// Slice carves a row-major mesh out of a contiguous device run; the mesh
// is bound to the faulted topology, so everything planned on it sees the
// degraded fabric.
func (f *Faulted) Slice(shape []int, firstDevice int) (*Mesh, error) {
	return sliceTopology(f, shape, firstDevice)
}

// Fingerprint folds the fault set into the base identity, partitioning
// every fingerprint-keyed structure (SameTopology, topology-pinned
// sessions, served-topology memos) between healthy and degraded. An empty
// overlay returns the base fingerprint unchanged — the identity the
// golden tests pin down.
func (f *Faulted) Fingerprint() string {
	if f.fs.Empty() {
		return f.base.Fingerprint()
	}
	return "faulted(" + f.base.Fingerprint() + "|" + f.fs.Canonical() + ")"
}

func (f *Faulted) String() string {
	if f.fs.Empty() {
		return f.base.String()
	}
	return fmt.Sprintf("faulted(%v, %d link faults, %d straggler hosts)",
		f.base, len(f.fs.Links), len(f.fs.Hosts))
}

// ParseFaultSet parses the compact fault notation shared by the CLIs:
// semicolon-separated clauses, each either a link or a host fault.
//
//	link:0-1:down                  the 0-1 link is down (traffic detours)
//	link:0-2:bw=0.5                half the 0-2 link's bandwidth
//	link:0-2:bw=0.5,lat+=20e-6     ... and add 20us latency
//	host:3:nic=0.25                host 3's NIC runs at a quarter speed
//	host:3:nic=0.25,intra=0.5      ... and NVLink at half
//
// Example: "link:0-1:down;host:3:nic=0.25,intra=0.5". Validation against
// a concrete topology (host ranges, detour existence) happens at
// NewFaulted.
func ParseFaultSet(s string) (FaultSet, error) {
	var fs FaultSet
	for _, clause := range strings.Split(s, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		parts := strings.SplitN(clause, ":", 3)
		if len(parts) != 3 {
			return fs, fmt.Errorf("mesh: fault clause %q must look like link:A-B:... or host:H:...", clause)
		}
		switch parts[0] {
		case "link":
			ab := strings.SplitN(parts[1], "-", 2)
			if len(ab) != 2 {
				return fs, fmt.Errorf("mesh: fault clause %q: link endpoints must look like A-B", clause)
			}
			a, errA := strconv.Atoi(ab[0])
			b, errB := strconv.Atoi(ab[1])
			if errA != nil || errB != nil {
				return fs, fmt.Errorf("mesh: fault clause %q: bad link endpoints", clause)
			}
			lf := LinkFault{A: a, B: b}
			for _, kv := range strings.Split(parts[2], ",") {
				switch {
				case kv == "down":
					lf.Down = true
				case strings.HasPrefix(kv, "bw="):
					v, err := strconv.ParseFloat(kv[len("bw="):], 64)
					if err != nil {
						return fs, fmt.Errorf("mesh: fault clause %q: bad bandwidth scale: %v", clause, err)
					}
					lf.BandwidthScale = v
				case strings.HasPrefix(kv, "lat+="):
					v, err := strconv.ParseFloat(kv[len("lat+="):], 64)
					if err != nil {
						return fs, fmt.Errorf("mesh: fault clause %q: bad extra latency: %v", clause, err)
					}
					lf.ExtraLatency = v
				default:
					return fs, fmt.Errorf("mesh: fault clause %q: unknown link field %q (want down, bw=, lat+=)", clause, kv)
				}
			}
			fs.Links = append(fs.Links, lf)
		case "host":
			h, err := strconv.Atoi(parts[1])
			if err != nil {
				return fs, fmt.Errorf("mesh: fault clause %q: bad host index", clause)
			}
			hf := HostFault{Host: h}
			for _, kv := range strings.Split(parts[2], ",") {
				switch {
				case strings.HasPrefix(kv, "nic="):
					v, err := strconv.ParseFloat(kv[len("nic="):], 64)
					if err != nil {
						return fs, fmt.Errorf("mesh: fault clause %q: bad nic scale: %v", clause, err)
					}
					hf.NICScale = v
				case strings.HasPrefix(kv, "intra="):
					v, err := strconv.ParseFloat(kv[len("intra="):], 64)
					if err != nil {
						return fs, fmt.Errorf("mesh: fault clause %q: bad intra scale: %v", clause, err)
					}
					hf.IntraScale = v
				default:
					return fs, fmt.Errorf("mesh: fault clause %q: unknown host field %q (want nic=, intra=)", clause, kv)
				}
			}
			fs.Hosts = append(fs.Hosts, hf)
		default:
			return fs, fmt.Errorf("mesh: fault clause %q: unknown kind %q (want link or host)", clause, parts[0])
		}
	}
	return fs, nil
}
