package mesh

import (
	"fmt"
	"strings"
	"time"
)

// Churn timelines: a deterministic schedule of fault arrivals and heals
// over Faulted overlays. Each step names the complete FaultSet active from
// its time onward — not a delta — so any prefix of a timeline fully
// determines the fabric's state, a step with an empty set is a heal back
// to the pristine topology, and two timelines that visit the same overlay
// (e.g. a link flapping down, up, down) revisit the same Canonical()
// identity, which is exactly what lets a replanning cache serve the
// revisit without a search.

// ChurnStep is one state transition of a churn timeline.
type ChurnStep struct {
	// At is when this overlay becomes active, relative to the timeline
	// start.
	At time.Duration
	// Faults is the complete overlay active from At until the next step
	// (empty = healed).
	Faults FaultSet
}

// ChurnTimeline is a deterministic fault schedule: steps in strictly
// increasing time order. Before the first step the topology is healthy.
type ChurnTimeline struct {
	Steps []ChurnStep
}

// Empty reports whether the timeline has no steps.
func (tl ChurnTimeline) Empty() bool { return len(tl.Steps) == 0 }

// Validate checks the schedule shape (non-negative, strictly increasing
// times) and, when topo is non-nil, that every step's overlay is valid on
// it (host ranges, detour existence — the NewFaulted rules).
func (tl ChurnTimeline) Validate(topo Topology) error {
	for i, s := range tl.Steps {
		if s.At < 0 {
			return fmt.Errorf("mesh: churn step %d at negative time %v", i, s.At)
		}
		if i > 0 && s.At <= tl.Steps[i-1].At {
			return fmt.Errorf("mesh: churn step %d at %v does not advance past step %d at %v",
				i, s.At, i-1, tl.Steps[i-1].At)
		}
		if topo != nil {
			if _, err := NewFaulted(topo, s.Faults); err != nil {
				return fmt.Errorf("mesh: churn step %d: %w", i, err)
			}
		}
	}
	return nil
}

// ActiveAt returns the overlay active at elapsed time d and the index of
// the step that installed it; before the first step it returns the empty
// overlay and index -1.
func (tl ChurnTimeline) ActiveAt(d time.Duration) (FaultSet, int) {
	active, idx := FaultSet{}, -1
	for i, s := range tl.Steps {
		if s.At > d {
			break
		}
		active, idx = s.Faults, i
	}
	return active, idx
}

// String renders the timeline in the ParseChurnTimeline notation.
func (tl ChurnTimeline) String() string {
	parts := make([]string, len(tl.Steps))
	for i, s := range tl.Steps {
		parts[i] = strings.TrimSpace(fmt.Sprintf("@%v %s", s.At, faultSetSpec(s.Faults)))
	}
	return strings.Join(parts, " | ")
}

// faultSetSpec renders a FaultSet in the ParseFaultSet notation (the
// normalized order; empty overlay renders "").
func faultSetSpec(fs FaultSet) string {
	n := fs.normalized()
	var clauses []string
	for _, l := range n.Links {
		switch {
		case l.Down:
			clauses = append(clauses, fmt.Sprintf("link:%d-%d:down", l.A, l.B))
		default:
			var fields []string
			if l.BandwidthScale != 0 && l.BandwidthScale != 1 {
				fields = append(fields, fmt.Sprintf("bw=%g", l.BandwidthScale))
			}
			if l.ExtraLatency != 0 {
				fields = append(fields, fmt.Sprintf("lat+=%g", l.ExtraLatency))
			}
			clauses = append(clauses, fmt.Sprintf("link:%d-%d:%s", l.A, l.B, strings.Join(fields, ",")))
		}
	}
	for _, h := range n.Hosts {
		var fields []string
		if h.NICScale != 0 && h.NICScale != 1 {
			fields = append(fields, fmt.Sprintf("nic=%g", h.NICScale))
		}
		if h.IntraScale != 0 && h.IntraScale != 1 {
			fields = append(fields, fmt.Sprintf("intra=%g", h.IntraScale))
		}
		clauses = append(clauses, fmt.Sprintf("host:%d:%s", h.Host, strings.Join(fields, ",")))
	}
	return strings.Join(clauses, ";")
}

// ParseChurnTimeline parses the CLI churn notation: steps separated by
// "|", each "@<duration> <faultspec>" where the fault spec uses the
// ParseFaultSet notation and an omitted spec means healed.
//
//	@0 link:0-1:down | @500ms | @1s host:1:nic=0.25
//
// downs the 0-1 link immediately, heals it at 500ms, and makes host 1 a
// straggler at 1s. Validation against a concrete topology (host ranges,
// detour existence, strictly increasing times) happens at Validate.
func ParseChurnTimeline(s string) (ChurnTimeline, error) {
	var tl ChurnTimeline
	for _, part := range strings.Split(s, "|") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if !strings.HasPrefix(part, "@") {
			return tl, fmt.Errorf("mesh: churn step %q must start with @<duration>", part)
		}
		atSpec, faultSpec, _ := strings.Cut(part[1:], " ")
		at, err := time.ParseDuration(atSpec)
		if err != nil {
			return tl, fmt.Errorf("mesh: churn step %q: bad time %q: %v", part, atSpec, err)
		}
		fs, err := ParseFaultSet(strings.TrimSpace(faultSpec))
		if err != nil {
			return tl, fmt.Errorf("mesh: churn step %q: %v", part, err)
		}
		tl.Steps = append(tl.Steps, ChurnStep{At: at, Faults: fs})
	}
	return tl, tl.Validate(nil)
}
