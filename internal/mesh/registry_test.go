package mesh

import (
	"strings"
	"testing"
)

func TestDefaultRegistryPresets(t *testing.T) {
	reg := DefaultRegistry()
	names := reg.Names()
	for _, want := range []string{"p3", "dgx", "dgx-a100", "mixed"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("preset %q missing from %v", want, names)
		}
	}

	p3, err := reg.Build("p3", TopologyParams{Hosts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if p3.HostCount() != 3 || p3.NumDevices() != 12 {
		t.Errorf("p3: %d hosts, %d devices", p3.HostCount(), p3.NumDevices())
	}

	// Defaults apply when Hosts is zero; names are case-insensitive.
	dgx, err := reg.Build("DGX-A100", TopologyParams{})
	if err != nil {
		t.Fatal(err)
	}
	if dgx.HostCount() != 2 || dgx.NumDevices() != 16 {
		t.Errorf("dgx default: %d hosts, %d devices", dgx.HostCount(), dgx.NumDevices())
	}
	alias, err := reg.Build("dgx", TopologyParams{})
	if err != nil {
		t.Fatal(err)
	}
	if alias.Fingerprint() != dgx.Fingerprint() {
		t.Error("dgx alias must build the same hardware as dgx-a100")
	}

	mixed, err := reg.Build("mixed", TopologyParams{Hosts: 3, Oversubscription: 2})
	if err != nil {
		t.Fatal(err)
	}
	hc, ok := mixed.(*HeteroCluster)
	if !ok {
		t.Fatalf("mixed built %T", mixed)
	}
	if hc.Oversubscription != 2 || hc.HostCount() != 3 {
		t.Errorf("mixed: %+v", hc)
	}
	// 1 p3 host (4 devices) + 2 DGX hosts (8 each).
	if hc.NumDevices() != 20 {
		t.Errorf("mixed devices = %d", hc.NumDevices())
	}
}

func TestRegistryErrors(t *testing.T) {
	reg := DefaultRegistry()
	if _, err := reg.Build("nope", TopologyParams{}); err == nil {
		t.Error("unknown preset must error")
	} else if !strings.Contains(err.Error(), "p3") {
		t.Errorf("error should list presets: %v", err)
	}
	if _, err := reg.Build("p3", TopologyParams{Hosts: -1}); err == nil {
		t.Error("negative hosts must error")
	}
	if _, err := reg.Build("p3", TopologyParams{Hosts: MaxRegistryHosts + 1}); err == nil {
		t.Error("host counts beyond the registry bound must error before allocating")
	}
	if _, err := reg.Build("mixed", TopologyParams{Oversubscription: -2}); err == nil {
		t.Error("negative oversubscription must error")
	}
	if _, err := reg.Build("mixed", TopologyParams{Hosts: 1}); err == nil {
		t.Error("mixed with one host must error")
	}

	fresh := NewRegistry()
	if err := fresh.Register("", nil); err == nil {
		t.Error("empty name must error")
	}
	if err := fresh.Register("x", nil); err == nil {
		t.Error("nil builder must error")
	}
	b := func(TopologyParams) (Topology, error) { return AWSP3Cluster(1), nil }
	if err := fresh.Register("x", b); err != nil {
		t.Fatal(err)
	}
	if err := fresh.Register("X", b); err == nil {
		t.Error("duplicate (case-insensitive) name must error")
	}
}
