package mesh

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
)

// Topology is the pluggable hardware model every layer above plans against:
// a set of hosts, each carrying accelerator devices behind a fast intra-host
// interconnect, joined by a (possibly oversubscribed) inter-host fabric.
//
// The homogeneous Cluster (the paper's single-tier testbed) and the
// per-host-parameterised HeteroCluster both implement it; the simulator,
// the resharding planner and the pipeline harness only ever see this
// interface, so new fabrics plug in without touching those layers.
//
// Device indices are global and dense: host h owns a contiguous run of
// indices, hosts in ascending order — the invariant the collective orders
// and the host-level scheduler rely on.
type Topology interface {
	// HostCount is the number of hosts.
	HostCount() int
	// NumDevices is the total accelerator count.
	NumDevices() int
	// HostOf returns the host index owning a device.
	HostOf(device int) int
	// DevicesOnHost returns the device indices of one host, ascending.
	DevicesOnHost(host int) []int
	// ValidDevice reports whether the device index exists.
	ValidDevice(device int) bool
	// SameHost reports whether two devices share a host.
	SameHost(a, b int) bool
	// IntraBandwidth is host h's device-to-device bandwidth, bytes/s per
	// direction (NVLink/NVSwitch-class).
	IntraBandwidth(host int) float64
	// IntraLatency is host h's fixed per-transfer latency, seconds.
	IntraLatency(host int) float64
	// NICBandwidth is one NIC's bandwidth on host h, bytes/s per direction.
	NICBandwidth(host int) float64
	// NICCount is the number of independent NICs on host h (>= 1).
	NICCount(host int) int
	// InterBandwidth is the effective point-to-point bandwidth of a
	// cross-host transfer src -> dst, bytes/s, after fabric oversubscription.
	InterBandwidth(srcHost, dstHost int) float64
	// InterLatency is the fixed cross-host transfer latency, seconds.
	InterLatency(srcHost, dstHost int) float64
	// Slice carves a row-major mesh out of a contiguous device run.
	Slice(shape []int, firstDevice int) (*Mesh, error)
	// Fingerprint is a stable identity string: two topologies with equal
	// fingerprints time every transfer identically. SameTopology falls
	// back to it whenever instance identity does not already decide.
	Fingerprint() string
	fmt.Stringer
}

// SameTopology reports whether two meshes' topologies describe the same
// hardware: pointer/value identity when the implementations are
// comparable (the cheap common case — one topology instance threaded
// everywhere), falling back to Fingerprint equality otherwise — so two
// independently built but identical topologies, or a Faulted overlay with
// an empty fault set and its base, compare equal. Interface equality
// alone would panic for implementations backed by uncomparable types
// (e.g. a struct holding a per-host slice by value).
func SameTopology(a, b Topology) bool {
	if a == nil || b == nil {
		return a == b
	}
	if reflect.TypeOf(a).Comparable() && reflect.TypeOf(b).Comparable() && a == b {
		return true
	}
	return a.Fingerprint() == b.Fingerprint()
}

// Topology interface implementation for the homogeneous Cluster.

// HostCount returns the number of hosts.
func (c *Cluster) HostCount() int { return c.NumHosts }

// IntraBandwidth returns the uniform intra-host bandwidth.
func (c *Cluster) IntraBandwidth(host int) float64 { return c.IntraHostBandwidth }

// IntraLatency returns the uniform intra-host latency.
func (c *Cluster) IntraLatency(host int) float64 { return c.IntraHostLatency }

// NICBandwidth returns the uniform per-NIC bandwidth.
func (c *Cluster) NICBandwidth(host int) float64 { return c.HostBandwidth }

// NICCount returns the uniform NIC count per host.
func (c *Cluster) NICCount(host int) int { return c.NICs() }

// InterBandwidth returns the uniform cross-host bandwidth (the fabric is
// fully connected and non-oversubscribed, §3).
func (c *Cluster) InterBandwidth(srcHost, dstHost int) float64 { return c.HostBandwidth }

// InterLatency returns the uniform cross-host latency.
func (c *Cluster) InterLatency(srcHost, dstHost int) float64 { return c.InterHostLatency }

// Fingerprint identifies the homogeneous topology by its parameters.
func (c *Cluster) Fingerprint() string {
	return fmt.Sprintf("homog(h=%d,d=%d,ib=%g,il=%g,nb=%g,nl=%g,nics=%d)",
		c.NumHosts, c.DevicesPerHost, c.IntraHostBandwidth, c.IntraHostLatency,
		c.HostBandwidth, c.InterHostLatency, c.NICs())
}

// HostSpec describes one host of a heterogeneous cluster.
type HostSpec struct {
	// Devices is the accelerator count of this host.
	Devices int
	// IntraBandwidth is the device-to-device bandwidth within the host,
	// bytes/s per direction.
	IntraBandwidth float64
	// IntraLatency is the fixed intra-host per-transfer latency, seconds.
	IntraLatency float64
	// NICBandwidth is the bandwidth of one NIC, bytes/s per direction.
	NICBandwidth float64
	// NICs is the number of independent NICs (0 means 1).
	NICs int
}

// EffectiveNICs returns the NIC count, at least one.
func (s HostSpec) EffectiveNICs() int {
	if s.NICs < 1 {
		return 1
	}
	return s.NICs
}

func (s HostSpec) fingerprint() string {
	return fmt.Sprintf("d%d,ib%g,il%g,nb%g,nn%d",
		s.Devices, s.IntraBandwidth, s.IntraLatency, s.NICBandwidth, s.EffectiveNICs())
}

// HeteroCluster is a heterogeneous accelerator cluster: per-host device
// counts, interconnects and NIC tiers, plus a switch fabric whose
// oversubscription divides effective cross-host bandwidth. It generalises
// the paper's homogeneous testbed to the multi-NIC / mixed-fabric setting
// §3.1 leaves as future work.
type HeteroCluster struct {
	// Hosts holds one spec per host, in device-index order.
	Hosts []HostSpec
	// InterHostLatency is the fixed cross-host transfer latency, seconds.
	InterHostLatency float64
	// Oversubscription >= 1 divides effective cross-host bandwidth: a 2:1
	// oversubscribed leaf-spine fabric halves point-to-point throughput.
	Oversubscription float64
	// firstDev[h] is the global index of host h's first device;
	// firstDev[len(Hosts)] is the total device count.
	firstDev []int
}

// NewHeteroCluster validates per-host specs and builds the cluster.
func NewHeteroCluster(hosts []HostSpec, interLatency, oversubscription float64) (*HeteroCluster, error) {
	if len(hosts) == 0 {
		return nil, fmt.Errorf("mesh: heterogeneous cluster needs at least one host")
	}
	if interLatency < 0 {
		return nil, fmt.Errorf("mesh: negative inter-host latency %g", interLatency)
	}
	if oversubscription == 0 {
		oversubscription = 1
	}
	if oversubscription < 1 {
		return nil, fmt.Errorf("mesh: oversubscription %g < 1", oversubscription)
	}
	hc := &HeteroCluster{
		Hosts:            append([]HostSpec(nil), hosts...),
		InterHostLatency: interLatency,
		Oversubscription: oversubscription,
		firstDev:         make([]int, len(hosts)+1),
	}
	for h, s := range hosts {
		switch {
		case s.Devices <= 0:
			return nil, fmt.Errorf("mesh: host %d has non-positive device count %d", h, s.Devices)
		case s.IntraBandwidth <= 0 || s.NICBandwidth <= 0:
			return nil, fmt.Errorf("mesh: host %d bandwidths must be positive (intra=%g nic=%g)", h, s.IntraBandwidth, s.NICBandwidth)
		case s.IntraLatency < 0:
			return nil, fmt.Errorf("mesh: host %d has negative latency", h)
		}
		hc.firstDev[h+1] = hc.firstDev[h] + s.Devices
	}
	return hc, nil
}

// MustHeteroCluster is NewHeteroCluster that panics on error; for presets
// whose parameters are valid by construction.
func MustHeteroCluster(hosts []HostSpec, interLatency, oversubscription float64) *HeteroCluster {
	hc, err := NewHeteroCluster(hosts, interLatency, oversubscription)
	if err != nil {
		panic(err)
	}
	return hc
}

// HostCount returns the number of hosts.
func (hc *HeteroCluster) HostCount() int { return len(hc.Hosts) }

// NumDevices returns the total device count.
func (hc *HeteroCluster) NumDevices() int { return hc.firstDev[len(hc.Hosts)] }

// HostOf returns the host owning a device (binary search over the per-host
// device runs).
func (hc *HeteroCluster) HostOf(device int) int {
	return sort.Search(len(hc.Hosts), func(h int) bool { return hc.firstDev[h+1] > device })
}

// DevicesOnHost returns the device indices of one host.
func (hc *HeteroCluster) DevicesOnHost(host int) []int {
	out := make([]int, hc.Hosts[host].Devices)
	for i := range out {
		out[i] = hc.firstDev[host] + i
	}
	return out
}

// ValidDevice reports whether the device index exists.
func (hc *HeteroCluster) ValidDevice(device int) bool {
	return device >= 0 && device < hc.NumDevices()
}

// SameHost reports whether two devices share a host.
func (hc *HeteroCluster) SameHost(a, b int) bool { return hc.HostOf(a) == hc.HostOf(b) }

// IntraBandwidth returns host h's intra-host bandwidth.
func (hc *HeteroCluster) IntraBandwidth(host int) float64 { return hc.Hosts[host].IntraBandwidth }

// IntraLatency returns host h's intra-host latency.
func (hc *HeteroCluster) IntraLatency(host int) float64 { return hc.Hosts[host].IntraLatency }

// NICBandwidth returns host h's per-NIC bandwidth.
func (hc *HeteroCluster) NICBandwidth(host int) float64 { return hc.Hosts[host].NICBandwidth }

// NICCount returns host h's NIC count.
func (hc *HeteroCluster) NICCount(host int) int { return hc.Hosts[host].EffectiveNICs() }

// InterBandwidth is the slower endpoint NIC divided by the fabric
// oversubscription factor.
func (hc *HeteroCluster) InterBandwidth(srcHost, dstHost int) float64 {
	bw := hc.Hosts[srcHost].NICBandwidth
	if d := hc.Hosts[dstHost].NICBandwidth; d < bw {
		bw = d
	}
	return bw / hc.Oversubscription
}

// InterLatency returns the uniform cross-host latency.
func (hc *HeteroCluster) InterLatency(srcHost, dstHost int) float64 { return hc.InterHostLatency }

// Slice carves a row-major mesh out of a contiguous device run.
func (hc *HeteroCluster) Slice(shape []int, firstDevice int) (*Mesh, error) {
	return sliceTopology(hc, shape, firstDevice)
}

// Fingerprint identifies the topology by every per-host spec plus the
// fabric parameters.
func (hc *HeteroCluster) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "hetero(il=%g,ov=%g", hc.InterHostLatency, hc.Oversubscription)
	for _, s := range hc.Hosts {
		b.WriteByte(';')
		b.WriteString(s.fingerprint())
	}
	b.WriteByte(')')
	return b.String()
}

func (hc *HeteroCluster) String() string {
	return fmt.Sprintf("hetero-cluster(%d hosts, %d devices, oversub %.1f:1)",
		hc.HostCount(), hc.NumDevices(), hc.Oversubscription)
}

// DGX A100 / NVSwitch-class constants: 8 A100s behind NVSwitch with eight
// HDR-200 InfiniBand compute NICs per node.
const (
	// DGXA100IntraBandwidth is the per-GPU NVSwitch bandwidth (bytes/s).
	DGXA100IntraBandwidth = 600e9
	// DGXA100IntraLatency is the NVSwitch per-transfer launch overhead.
	DGXA100IntraLatency = 3e-6
	// DGXA100NICBandwidth is one HDR-200 NIC, 200 Gbps in bytes/s.
	DGXA100NICBandwidth = 200e9 / 8
	// DGXA100InterLatency is the InfiniBand cross-host latency.
	DGXA100InterLatency = 5e-6
)

// DGXA100HostSpec returns one DGX-A100-class host: 8 GPUs, NVSwitch
// intra-host, 8 x 200 Gbps InfiniBand NICs.
func DGXA100HostSpec() HostSpec {
	return HostSpec{
		Devices:        8,
		IntraBandwidth: DGXA100IntraBandwidth,
		IntraLatency:   DGXA100IntraLatency,
		NICBandwidth:   DGXA100NICBandwidth,
		NICs:           8,
	}
}

// DGXA100Cluster builds an InfiniBand/NVSwitch-class cluster of DGX-A100
// nodes with a non-oversubscribed fabric.
func DGXA100Cluster(hosts int) *HeteroCluster {
	specs := make([]HostSpec, hosts)
	for i := range specs {
		specs[i] = DGXA100HostSpec()
	}
	return MustHeteroCluster(specs, DGXA100InterLatency, 1)
}

// P3HostSpec returns one AWS p3.8xlarge-class host (4 V100, NVLink, one
// 10 Gbps NIC) as a HostSpec, for mixing with faster tiers.
func P3HostSpec() HostSpec {
	return HostSpec{
		Devices:        4,
		IntraBandwidth: P3IntraHostBandwidth,
		IntraLatency:   P3IntraHostLatency,
		NICBandwidth:   P3HostBandwidth,
		NICs:           1,
	}
}

// MixedP3DGXCluster builds the heterogeneous scenario of the examples: p3
// Ethernet hosts alongside DGX-A100 InfiniBand hosts on one fabric with the
// given oversubscription. Cross-tier transfers bottleneck on the p3 NIC.
func MixedP3DGXCluster(p3Hosts, dgxHosts int, oversubscription float64) *HeteroCluster {
	specs := make([]HostSpec, 0, p3Hosts+dgxHosts)
	for i := 0; i < p3Hosts; i++ {
		specs = append(specs, P3HostSpec())
	}
	for i := 0; i < dgxHosts; i++ {
		specs = append(specs, DGXA100HostSpec())
	}
	return MustHeteroCluster(specs, P3InterHostLatency, oversubscription)
}

// HostFingerprint renders the identity of one host as seen by the
// simulator: device count, intra-host link, NIC tier. Two hosts with equal
// fingerprints are interchangeable in any transfer schedule — the
// plan cache uses this to recognise stage boundaries that differ only by
// which physical hosts they sit on.
func HostFingerprint(t Topology, host int) string {
	return fmt.Sprintf("d%d,ib%g,il%g,nb%g,nn%d",
		len(t.DevicesOnHost(host)), t.IntraBandwidth(host), t.IntraLatency(host),
		t.NICBandwidth(host), t.NICCount(host))
}
