package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// The paper's artifact records microbenchmark results in JSON files and
// end-to-end results in TSV files (Appendix A.5); these helpers mirror
// that format so downstream tooling can diff runs.

// WriteMicroJSON writes microbenchmark rows as a JSON array.
func WriteMicroJSON(path string, rows []MicroRow) error {
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadMicroJSON loads rows written by WriteMicroJSON.
func ReadMicroJSON(path string) ([]MicroRow, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rows []MicroRow
	if err := json.Unmarshal(data, &rows); err != nil {
		return nil, fmt.Errorf("harness: %s: %v", path, err)
	}
	return rows, nil
}

// WriteE2ETSV writes end-to-end rows as tab-separated values with a header
// line, the artifact's format for training results.
func WriteE2ETSV(path string, rows []E2ERow) error {
	var b strings.Builder
	b.WriteString("model\tcase\tmethod\ttflops\titer_seconds\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s\t%s\t%s\t%.4f\t%.6f\n", r.Model, r.Case, r.Method, r.TFLOPS, r.IterTime)
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// ReadE2ETSV loads rows written by WriteE2ETSV.
func ReadE2ETSV(path string) ([]E2ERow, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 1 {
		return nil, fmt.Errorf("harness: %s: empty file", path)
	}
	var rows []E2ERow
	for i, line := range lines[1:] {
		f := strings.Split(line, "\t")
		if len(f) != 5 {
			return nil, fmt.Errorf("harness: %s line %d: %d fields", path, i+2, len(f))
		}
		var r E2ERow
		r.Model, r.Case, r.Method = f[0], f[1], f[2]
		if _, err := fmt.Sscanf(f[3], "%f", &r.TFLOPS); err != nil {
			return nil, fmt.Errorf("harness: %s line %d: %v", path, i+2, err)
		}
		if _, err := fmt.Sscanf(f[4], "%f", &r.IterTime); err != nil {
			return nil, fmt.Errorf("harness: %s line %d: %v", path, i+2, err)
		}
		rows = append(rows, r)
	}
	return rows, nil
}
