package harness

import (
	"fmt"
	"strings"

	"alpacomm/internal/mesh"
	"alpacomm/internal/resharding"
)

// ChunkRow is one point of the broadcast pipelining-depth ablation.
type ChunkRow struct {
	Chunks   int
	EffGbps  float64
	Makespan float64
}

// ChunkSweep ablates the broadcast chunk count K (§3.1: T = t + A·t/K, but
// each chunk's first hop pays wire latency, so very large K stops
// helping). Setting: one sender, 4 receiver hosts x 2 GPUs, 1 GB/scale
// message — the Fig. 5b worst case.
func ChunkSweep(scale int) ([]ChunkRow, error) {
	if scale < 1 {
		scale = 1
	}
	c := mesh.AWSP3Cluster(5)
	var devs []int
	for h := 1; h <= 4; h++ {
		devs = append(devs, h*4, h*4+1)
	}
	task, err := fig5Task(c, 16384/scale, devs, []int{4, 2})
	if err != nil {
		return nil, err
	}
	var out []ChunkRow
	for _, k := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256} {
		plan, err := resharding.NewPlan(task, resharding.Options{
			Strategy:  resharding.Broadcast,
			Scheduler: resharding.SchedEnsemble,
			Chunks:    k,
			Seed:      1,
		})
		if err != nil {
			return nil, err
		}
		res, err := plan.Simulate()
		if err != nil {
			return nil, err
		}
		out = append(out, ChunkRow{Chunks: k, EffGbps: res.EffectiveGbps, Makespan: res.Makespan})
	}
	return out, nil
}

// RenderChunkRows formats the chunk ablation.
func RenderChunkRows(rows []ChunkRow) string {
	var b strings.Builder
	b.WriteString("Broadcast pipelining-depth ablation (1 sender -> 4 hosts x 2 GPUs)\n")
	fmt.Fprintf(&b, "%-8s %14s %12s\n", "chunks", "eff-bw (Gbps)", "time (s)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8d %14.2f %12.4f\n", r.Chunks, r.EffGbps, r.Makespan)
	}
	return b.String()
}
