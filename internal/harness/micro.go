// Package harness contains one runner per table and figure of the paper's
// evaluation (§5): the microbenchmarks (Figs. 5 and 6 over Table 2's
// cases), the end-to-end throughput study (Fig. 7 over Table 3), and the
// ablations (Figs. 8 and 9), plus Table 1's memory accounting. The cmd/
// tools and the repository's benchmarks are thin wrappers over these
// functions.
package harness

import (
	"fmt"
	"strings"

	"alpacomm/internal/mesh"
	"alpacomm/internal/resharding"
	"alpacomm/internal/sharding"
	"alpacomm/internal/tensor"
)

// MicroRow is one point of a microbenchmark figure.
type MicroRow struct {
	// Case identifies the configuration ("1gpu", "case3", ...).
	Case string
	// Method is the system under test ("Send/Recv", "Alpa", "Ours", ...).
	Method string
	// EffGbps is the effective bandwidth: tensor bits / completion time.
	EffGbps float64
	// Makespan is the completion time in seconds.
	Makespan float64
	// Units is the number of unit communication tasks.
	Units int
}

// microMethods are the Fig. 5/6 competitors: the naive P2P baseline, the
// all-gather-based Alpa baseline with greedy lowest-load balancing, and
// AlpaComm (broadcast + ensemble scheduling).
func microMethods() []struct {
	Name string
	Opts resharding.Options
} {
	return []struct {
		Name string
		Opts resharding.Options
	}{
		{"Send/Recv", resharding.Options{Strategy: resharding.SendRecv, Scheduler: resharding.SchedGreedyLoad}},
		{"Alpa", resharding.Options{Strategy: resharding.Alpa, Scheduler: resharding.SchedGreedyLoad}},
		{"Ours", resharding.Options{Strategy: resharding.Broadcast, Scheduler: resharding.SchedEnsemble, Seed: 1, Chunks: 64}},
	}
}

// runCase plans and simulates one resharding under one method.
func runCase(task *sharding.Task, opts resharding.Options, caseName, method string) (MicroRow, error) {
	plan, err := resharding.NewPlan(task, opts)
	if err != nil {
		return MicroRow{}, fmt.Errorf("%s/%s: %v", caseName, method, err)
	}
	res, err := plan.Simulate()
	if err != nil {
		return MicroRow{}, fmt.Errorf("%s/%s: %v", caseName, method, err)
	}
	return MicroRow{
		Case:     caseName,
		Method:   method,
		EffGbps:  res.EffectiveGbps,
		Makespan: res.Makespan,
		Units:    len(task.Units),
	}, nil
}

// fig5Task builds the Fig. 5 single-sender setting: a replicated tensor of
// `rows` x 16384 fp32 elements on device 0, destined (replicated) for the
// given receiver devices viewed as meshShape.
func fig5Task(c *mesh.Cluster, rows int, recvDevices, meshShape []int) (*sharding.Task, error) {
	src, err := mesh.NewMesh(c, []int{1, 1}, []int{0})
	if err != nil {
		return nil, err
	}
	dst, err := mesh.NewMesh(c, meshShape, recvDevices)
	if err != nil {
		return nil, err
	}
	return sharding.NewTask(tensor.MustShape(rows, 16384), tensor.Float32,
		src, sharding.MustParse("RR"), dst, sharding.MustParse("RR"))
}

// Fig5a reproduces Fig. 5a: one sender device, one receiver node with 1-4
// GPUs, 1 GB message (scaled down by `scale` >= 1 for fast runs).
func Fig5a(scale int) ([]MicroRow, error) {
	if scale < 1 {
		scale = 1
	}
	rows := 16384 / scale
	c := mesh.AWSP3Cluster(2)
	var out []MicroRow
	for n := 1; n <= 4; n++ {
		devs := make([]int, n)
		for i := range devs {
			devs[i] = 4 + i
		}
		task, err := fig5Task(c, rows, devs, []int{1, n})
		if err != nil {
			return nil, err
		}
		for _, m := range microMethods() {
			row, err := runCase(task, m.Opts, fmt.Sprintf("%dgpu", n), m.Name)
			if err != nil {
				return nil, err
			}
			out = append(out, row)
		}
	}
	return out, nil
}

// Fig5b reproduces Fig. 5b: one sender device, 1-4 receiver hosts with 2
// GPUs each.
func Fig5b(scale int) ([]MicroRow, error) {
	if scale < 1 {
		scale = 1
	}
	rows := 16384 / scale
	c := mesh.AWSP3Cluster(5)
	var out []MicroRow
	for a := 1; a <= 4; a++ {
		var devs []int
		for h := 1; h <= a; h++ {
			devs = append(devs, h*4, h*4+1)
		}
		task, err := fig5Task(c, rows, devs, []int{a, 2})
		if err != nil {
			return nil, err
		}
		for _, m := range microMethods() {
			row, err := runCase(task, m.Opts, fmt.Sprintf("%dhost", a), m.Name)
			if err != nil {
				return nil, err
			}
			out = append(out, row)
		}
	}
	return out, nil
}

// table2Case is one of the paper's Table 2 multi-device configurations.
type table2Case struct {
	name               string
	sendSpec, recvSpec string
	sendMesh, recvMesh []int // mesh shapes
	dim0               int   // tensor leading dimension (1026 for case6's padding)
}

// table2Cases returns the nine Table 2 configurations. The tensor is
// (1024, 1024, 512) fp32; case 6 pads the leading dimension to 1026 so it
// tiles evenly over both a 2-row and a 3-row mesh.
func table2Cases() []table2Case {
	return []table2Case{
		{"case1", "S0RR", "S0RR", []int{2, 4}, []int{2, 4}, 1024},
		{"case2", "RRR", "S0RR", []int{2, 4}, []int{2, 4}, 1024},
		{"case3", "RS0R", "S0RR", []int{2, 4}, []int{2, 4}, 1024},
		{"case4", "RS01R", "S01RR", []int{2, 4}, []int{2, 4}, 1024},
		{"case5", "S1RR", "S0RR", []int{2, 4}, []int{2, 4}, 1024},
		{"case6", "S0RR", "S0RR", []int{2, 4}, []int{3, 4}, 1026},
		{"case7", "S1RR", "RRR", []int{1, 4}, []int{2, 4}, 1024},
		{"case8", "RRR", "RRR", []int{2, 3}, []int{3, 2}, 1026},
		{"case9", "RS0R", "RRS0", []int{2, 4}, []int{2, 4}, 1024},
	}
}

// buildTable2Task constructs the meshes and resharding task of one Table 2
// case. Sender meshes start at host 0, receiver meshes at host 2 (host
// count follows each mesh's needs; case 8's (2,3) and (3,2) meshes take
// the first 3 GPUs of each of their hosts). scale >= 1 shrinks the tensor.
func buildTable2Task(tc table2Case, scale int) (*sharding.Task, error) {
	c := mesh.AWSP3Cluster(5)
	meshDevices := func(shape []int, firstHost int) []int {
		// One mesh row per host when the row count spans hosts; rows take
		// the first `cols` devices of each host.
		rowsN, cols := shape[0], shape[1]
		var devs []int
		if cols <= c.DevicesPerHost {
			for r := 0; r < rowsN; r++ {
				host := firstHost + r
				for i := 0; i < cols; i++ {
					devs = append(devs, host*c.DevicesPerHost+i)
				}
			}
			return devs
		}
		// Wide rows span several hosts.
		n := rowsN * cols
		for i := 0; i < n; i++ {
			devs = append(devs, firstHost*c.DevicesPerHost+i)
		}
		return devs
	}
	src, err := mesh.NewMesh(c, tc.sendMesh, meshDevices(tc.sendMesh, 0))
	if err != nil {
		return nil, err
	}
	dst, err := mesh.NewMesh(c, tc.recvMesh, meshDevices(tc.recvMesh, 2))
	if err != nil {
		return nil, err
	}
	if scale < 1 {
		scale = 1
	}
	dim0 := tc.dim0
	if scale > 1 {
		// Keep divisibility by 6 (cases with degree-2 and degree-3 splits).
		dim0 = tc.dim0 / scale
		if dim0 < 12 {
			dim0 = 12
		}
		dim0 -= dim0 % 6
	}
	shape := tensor.MustShape(dim0, 1024, 512)
	return sharding.NewTask(shape, tensor.Float32,
		src, sharding.MustParse(tc.sendSpec), dst, sharding.MustParse(tc.recvSpec))
}

// Fig6 reproduces Fig. 6: the nine Table 2 cases under Send/Recv, Alpa and
// AlpaComm.
func Fig6(scale int) ([]MicroRow, error) {
	var out []MicroRow
	for _, tc := range table2Cases() {
		task, err := buildTable2Task(tc, scale)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", tc.name, err)
		}
		for _, m := range microMethods() {
			row, err := runCase(task, m.Opts, tc.name, m.Name)
			if err != nil {
				return nil, err
			}
			out = append(out, row)
		}
	}
	return out, nil
}

// Fig8 reproduces the Fig. 8 load-balance ablation: the nine Table 2 cases
// under the broadcast strategy with Naive, LoadBalanceOnly and Ensemble
// scheduling.
func Fig8(scale int) ([]MicroRow, error) {
	methods := []struct {
		Name string
		Opts resharding.Options
	}{
		{"Naive", resharding.Options{Strategy: resharding.Broadcast, Scheduler: resharding.SchedNaive, Chunks: 64}},
		{"LoadBalanceOnly", resharding.Options{Strategy: resharding.Broadcast, Scheduler: resharding.SchedLoadBalanceOnly, Chunks: 64}},
		{"Ours", resharding.Options{Strategy: resharding.Broadcast, Scheduler: resharding.SchedEnsemble, Seed: 1, Chunks: 64}},
	}
	var out []MicroRow
	for _, tc := range table2Cases() {
		task, err := buildTable2Task(tc, scale)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", tc.name, err)
		}
		for _, m := range methods {
			row, err := runCase(task, m.Opts, tc.name, m.Name)
			if err != nil {
				return nil, err
			}
			out = append(out, row)
		}
	}
	return out, nil
}

// RenderMicroRows formats microbenchmark rows as a fixed-width table
// grouped by case.
func RenderMicroRows(title string, rows []MicroRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-8s %-16s %14s %12s %6s\n", "case", "method", "eff-bw (Gbps)", "time (s)", "units")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-16s %14.2f %12.4f %6d\n", r.Case, r.Method, r.EffGbps, r.Makespan, r.Units)
	}
	return b.String()
}
