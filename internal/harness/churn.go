package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"alpacomm/internal/mesh"
	"alpacomm/internal/resharding"
	"alpacomm/internal/sharding"
)

// The churn benchmark pack: warm vs cold replanning under topology churn.
// Two views of the same question — how much of the cold-plan cost does
// incremental warm replanning avoid:
//
//   - replan rows measure one fault arrival per (preset, fault scenario)
//     with testing.Benchmark: the cold path (full ensemble search on the
//     degraded instance) against the warm path (WarmReplanContext from the
//     healthy incumbent), plus the plan-quality delta between the two;
//   - timeline rows replay each registry churn scenario step by step
//     through a Planner session (ReplanDegradedFrom, exactly the serving
//     path) and report the end-to-end warm cost, the per-step cold cost it
//     replaces, and how each step was served (cache hit, identity, search).
//
// This is the BENCH_churn.json artifact gated by `benchgate -churn`: a
// regression that silently falls back to cold replanning shows up as a
// collapsed speedup, and a warm plan worse than cold fails the quality
// gate.

// ChurnReplanRow is one measured (preset, fault scenario) warm-vs-cold
// replan comparison.
type ChurnReplanRow struct {
	// Preset is the registry topology ("p3", "dgx-a100", "mixed").
	Preset string `json:"preset"`
	// Scenario is the registry fault scenario ("link-down", ...).
	Scenario string `json:"scenario"`
	// TotalUnits is the boundary's decomposition size; ImpactedUnits is how
	// many units' host-level tasks the overlay changed.
	TotalUnits    int `json:"total_units"`
	ImpactedUnits int `json:"impacted_units"`
	// WarmMode is how the warm replan was served (identity, search,
	// incumbent, cold) and WarmDFSNodes its scaled node budget (0 when no
	// search ran).
	WarmMode     string `json:"warm_mode"`
	WarmDFSNodes int    `json:"warm_dfs_nodes"`
	// ColdNsPerReplan / WarmNsPerReplan are testing.Benchmark wall times
	// to produce the replacement plan: a full cold ensemble search vs the
	// warm path (impact diff, then nothing, a rebind, or a pinned
	// warm-started search with its acceptance simulations, depending on
	// WarmMode); Speedup is their ratio.
	ColdNsPerReplan float64 `json:"cold_ns_per_replan"`
	WarmNsPerReplan float64 `json:"warm_ns_per_replan"`
	Speedup         float64 `json:"speedup"`
	// ColdMakespan / WarmMakespan are the simulated makespans of the two
	// plans; IncumbentMakespan is the rebound incumbent's (the acceptance
	// baseline). QualityDeltaPct is 100*(warm-cold)/cold — positive means
	// the warm plan is worse.
	ColdMakespan      float64 `json:"cold_makespan_seconds"`
	WarmMakespan      float64 `json:"warm_makespan_seconds"`
	IncumbentMakespan float64 `json:"incumbent_makespan_seconds"`
	QualityDeltaPct   float64 `json:"quality_delta_pct"`
}

// ChurnTimelineRow is one registry churn scenario replayed through a
// Planner session on one preset.
type ChurnTimelineRow struct {
	// Preset is the registry topology; Scenario the churn scenario name.
	Preset   string `json:"preset"`
	Scenario string `json:"scenario"`
	// Steps is the timeline's step count.
	Steps int `json:"steps"`
	// WarmTotalNs is the wall time of serving every step through
	// ReplanDegradedFrom; ColdTotalNs is the summed cost of planning each
	// step's overlay cold instead; Speedup is their ratio.
	WarmTotalNs int64   `json:"warm_total_ns"`
	ColdTotalNs int64   `json:"cold_total_ns"`
	Speedup     float64 `json:"speedup"`
	// Stats is how the session served the steps — heals back to an overlay
	// already planned must show up as CacheHits.
	Stats resharding.ReplanStats `json:"stats"`
	// FinalMakespan is the simulated makespan after the last step (every
	// registry scenario ends healed, so this must equal the healthy
	// makespan).
	FinalMakespan float64 `json:"final_makespan_seconds"`
}

// ChurnReport is the BENCH_churn.json artifact shape.
type ChurnReport struct {
	Replans   []ChurnReplanRow   `json:"replans"`
	Timelines []ChurnTimelineRow `json:"timelines"`
}

// churnBenchOptions is the degraded pack's deterministic configuration at
// the serving node budget: replan latency is what the pack measures, so
// the cold side must pay what the serving daemon's cold path pays
// (DefaultAutotuneDFSNodes, the budget a served request with zero
// dfs_nodes is forced to), not the reduced test-speed budget the degraded
// pack uses.
var churnBenchOptions = resharding.Options{
	Strategy:  resharding.Broadcast,
	Scheduler: resharding.SchedEnsemble,
	Seed:      1,
	DFSNodes:  resharding.DefaultAutotuneDFSNodes,
	Chunks:    8,
}

// ChurnBench measures warm-vs-cold replanning on the golden boundary
// across every preset x fault scenario (replan rows) and replays every
// preset x churn scenario through a Planner session (timeline rows). The
// boundary and presets are the degraded pack's; the node budget is the
// serving default.
func ChurnBench(ctx context.Context) (*ChurnReport, error) {
	reg := mesh.DefaultRegistry()
	report := &ChurnReport{}
	for _, p := range degradedPackPresets() {
		task, err := degradedPackBoundary(p.Topo)
		if err != nil {
			return nil, fmt.Errorf("%s: boundary: %v", p.Name, err)
		}
		opts := churnBenchOptions

		// The healthy incumbent every warm replan starts from.
		incumbent, err := resharding.NewPlanContext(ctx, task, opts)
		if err != nil {
			return nil, fmt.Errorf("%s: healthy plan: %v", p.Name, err)
		}

		for _, scenario := range reg.FaultScenarioNames() {
			fs, err := reg.BuildFaultScenario(scenario, p.Topo)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: scenario: %v", p.Name, scenario, err)
			}
			row, err := churnReplanRow(ctx, p.Name, scenario, task, opts, fs, incumbent)
			if err != nil {
				return nil, err
			}
			report.Replans = append(report.Replans, *row)
		}

		for _, scenario := range reg.ChurnScenarioNames() {
			tl, err := reg.BuildChurnScenario(scenario, p.Topo)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: churn scenario: %v", p.Name, scenario, err)
			}
			row, err := churnTimelineRow(ctx, p.Name, scenario, p.Topo, task, opts, tl)
			if err != nil {
				return nil, err
			}
			report.Timelines = append(report.Timelines, *row)
		}
	}
	return report, nil
}

// churnReplanRow benchmarks one fault arrival: a cold replan of the
// degraded boundary against the warm path from the healthy incumbent.
func churnReplanRow(ctx context.Context, preset, scenario string, task *sharding.Task, opts resharding.Options, fs mesh.FaultSet, incumbent *resharding.Plan) (*ChurnReplanRow, error) {
	degTask, err := task.OnTopology(mesh.MustFaulted(task.Src.Mesh.Topo, fs))
	if err != nil {
		return nil, fmt.Errorf("%s/%s: rebind: %v", preset, scenario, err)
	}

	// One un-timed run each to capture the outcome the benchmark repeats
	// and the plan qualities. The timed loops below measure plan production
	// only — symmetric on both sides; neither re-times the reporting
	// simulation (warm search mode still pays its acceptance simulations,
	// which are part of deciding the plan).
	coldPlan, err := resharding.NewPlanContext(ctx, degTask, opts)
	if err != nil {
		return nil, fmt.Errorf("%s/%s: cold replan: %v", preset, scenario, err)
	}
	coldSim, err := coldPlan.SimulateNoTrace()
	if err != nil {
		return nil, fmt.Errorf("%s/%s: cold simulate: %v", preset, scenario, err)
	}
	warmPlan, warmSim, info, err := resharding.WarmReplanContext(ctx, degTask, opts, task, incumbent)
	if err != nil {
		return nil, fmt.Errorf("%s/%s: warm replan: %v", preset, scenario, err)
	}
	if warmSim == nil {
		if warmSim, err = warmPlan.SimulateNoTrace(); err != nil {
			return nil, fmt.Errorf("%s/%s: warm simulate: %v", preset, scenario, err)
		}
	}
	incMakespan := info.IncumbentMakespan
	if incMakespan == 0 {
		incMakespan = warmSim.Makespan
	}

	var benchErr error
	fail := func(b *testing.B, err error) {
		benchErr = err
		b.FailNow()
	}
	cold := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := resharding.NewPlanContext(ctx, degTask, opts); err != nil {
				fail(b, err)
			}
		}
	})
	if benchErr != nil {
		return nil, fmt.Errorf("%s/%s: cold bench: %v", preset, scenario, benchErr)
	}
	warm := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, _, err := resharding.WarmReplanContext(ctx, degTask, opts, task, incumbent); err != nil {
				fail(b, err)
			}
		}
	})
	if benchErr != nil {
		return nil, fmt.Errorf("%s/%s: warm bench: %v", preset, scenario, benchErr)
	}

	coldNs := float64(cold.T.Nanoseconds()) / float64(cold.N)
	warmNs := float64(warm.T.Nanoseconds()) / float64(warm.N)
	row := &ChurnReplanRow{
		Preset:            preset,
		Scenario:          scenario,
		TotalUnits:        info.TotalUnits,
		ImpactedUnits:     info.ImpactedUnits,
		WarmMode:          info.Mode,
		WarmDFSNodes:      info.DFSNodes,
		ColdNsPerReplan:   coldNs,
		WarmNsPerReplan:   warmNs,
		ColdMakespan:      coldSim.Makespan,
		WarmMakespan:      warmSim.Makespan,
		IncumbentMakespan: incMakespan,
	}
	if warmNs > 0 {
		row.Speedup = coldNs / warmNs
	}
	if coldSim.Makespan > 0 {
		row.QualityDeltaPct = 100 * (warmSim.Makespan - coldSim.Makespan) / coldSim.Makespan
	}
	return row, nil
}

// churnTimelineRow replays a churn timeline through a Planner session: the
// healthy boundary is planned once, then every step is a
// ReplanDegradedFrom(previous overlay -> this overlay) — the serving path,
// warm replans and cache hits included. The cold total is what planning
// each step's overlay from scratch would have cost instead.
func churnTimelineRow(ctx context.Context, preset, scenario string, topo mesh.Topology, task *sharding.Task, opts resharding.Options, tl mesh.ChurnTimeline) (*ChurnTimelineRow, error) {
	planner := resharding.NewPlanner(resharding.WithTopology(topo), resharding.WithTraceFreeSim())
	if _, _, err := planner.Plan(ctx, task, opts); err != nil {
		return nil, fmt.Errorf("%s/%s: healthy plan: %v", preset, scenario, err)
	}

	var warmTotal, coldTotal time.Duration
	var lastSim *resharding.SimResult
	prev := mesh.FaultSet{}
	for i, step := range tl.Steps {
		start := time.Now()
		_, sim, err := planner.ReplanDegradedFrom(ctx, task, opts, prev, step.Faults)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: step %d: %v", preset, scenario, i, err)
		}
		warmTotal += time.Since(start)
		lastSim = sim

		// The cold alternative: plan this step's overlay from scratch.
		degTask, err := task.OnTopology(mesh.MustFaulted(topo, step.Faults))
		if err != nil {
			return nil, fmt.Errorf("%s/%s: step %d rebind: %v", preset, scenario, i, err)
		}
		start = time.Now()
		coldPlan, err := resharding.NewPlanContext(ctx, degTask, opts)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: step %d cold: %v", preset, scenario, i, err)
		}
		if _, err := coldPlan.SimulateNoTrace(); err != nil {
			return nil, fmt.Errorf("%s/%s: step %d cold simulate: %v", preset, scenario, i, err)
		}
		coldTotal += time.Since(start)
		prev = step.Faults
	}

	row := &ChurnTimelineRow{
		Preset:      preset,
		Scenario:    scenario,
		Steps:       len(tl.Steps),
		WarmTotalNs: warmTotal.Nanoseconds(),
		ColdTotalNs: coldTotal.Nanoseconds(),
		Stats:       planner.ReplanStats(),
	}
	if warmTotal > 0 {
		row.Speedup = float64(coldTotal) / float64(warmTotal)
	}
	if lastSim != nil {
		row.FinalMakespan = lastSim.Makespan
	}
	return row, nil
}

// RenderChurnReport formats the churn report as aligned tables.
func RenderChurnReport(r *ChurnReport) string {
	var b strings.Builder
	b.WriteString("Warm vs cold replan, one fault arrival (testing.Benchmark):\n")
	fmt.Fprintf(&b, "  %-10s %-10s %9s %-9s %12s %12s %9s %9s\n",
		"preset", "scenario", "impacted", "mode", "cold ns", "warm ns", "speedup", "quality")
	for _, row := range r.Replans {
		fmt.Fprintf(&b, "  %-10s %-10s %5d/%-3d %-9s %12.0f %12.0f %8.1fx %+8.2f%%\n",
			row.Preset, row.Scenario, row.ImpactedUnits, row.TotalUnits, row.WarmMode,
			row.ColdNsPerReplan, row.WarmNsPerReplan, row.Speedup, row.QualityDeltaPct)
	}
	b.WriteString("\nChurn timelines replayed through a planner session:\n")
	fmt.Fprintf(&b, "  %-10s %-18s %5s %12s %12s %9s %s\n",
		"preset", "scenario", "steps", "warm ns", "cold ns", "speedup", "served (hit/ident/search/rej/cold)")
	for _, row := range r.Timelines {
		fmt.Fprintf(&b, "  %-10s %-18s %5d %12d %12d %8.1fx %d/%d/%d/%d/%d\n",
			row.Preset, row.Scenario, row.Steps, row.WarmTotalNs, row.ColdTotalNs, row.Speedup,
			row.Stats.CacheHits, row.Stats.WarmIdentity, row.Stats.WarmSearch,
			row.Stats.WarmRejected, row.Stats.Cold)
	}
	return b.String()
}

// WriteChurnJSON writes the churn report (the BENCH_churn.json artifact
// format).
func WriteChurnJSON(path string, r *ChurnReport) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
