package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"alpacomm/internal/mesh"
	"alpacomm/internal/resharding"
	"alpacomm/internal/sharding"
	"alpacomm/internal/tensor"
)

// The degraded-topology scenario pack: the same stage boundary planned
// healthy and under every named fault scenario on the three topology
// presets, reporting how much each degradation costs. This is the
// benchmark artifact (BENCH_degraded.json in CI) that makes replan-on-
// degrade observable: a regression that stops re-planning — or lets
// degraded plans leak into the healthy cache partition — shows up as a
// zero delta or a shared key.

// DegradedScenarioRow is one (preset, scenario) outcome.
type DegradedScenarioRow struct {
	// Preset is the registry topology ("p3", "dgx-a100", "mixed").
	Preset string `json:"preset"`
	// Scenario is the registry fault scenario ("link-down", ...).
	Scenario string `json:"scenario"`
	// HealthyMakespan is the boundary's simulated completion time on the
	// pristine preset, seconds.
	HealthyMakespan float64 `json:"healthy_makespan_seconds"`
	// DegradedMakespan is the same boundary re-planned under the overlay.
	DegradedMakespan float64 `json:"degraded_makespan_seconds"`
	// DeltaPct is the slowdown in percent ((degraded-healthy)/healthy).
	DeltaPct float64 `json:"delta_pct"`
	// HealthyGbps / DegradedGbps are the effective bandwidths.
	HealthyGbps  float64 `json:"healthy_gbps"`
	DegradedGbps float64 `json:"degraded_gbps"`
	// Replanned reports that the degraded plan differs from the healthy
	// one in senders or order — the planner actually adapted, not just
	// re-timed.
	Replanned bool `json:"replanned"`
}

// degradedPackPresets are the preset instances the pack runs on. Host
// counts are chosen so every scenario is valid (link-down needs a detour
// host) and the boundary spans degraded links on each.
func degradedPackPresets() []struct {
	Name string
	Topo mesh.Topology
} {
	return []struct {
		Name string
		Topo mesh.Topology
	}{
		{"p3", mesh.AWSP3Cluster(4)},
		{"dgx-a100", mesh.DGXA100Cluster(3)},
		{"mixed", mesh.MixedP3DGXCluster(2, 2, 2)},
	}
}

// degradedPackBoundary is the golden stage boundary: (2,4)@0 -> (2,4)@8,
// RS01R -> S01RR over a (128,128,8) fp32 tensor — the same problem the
// golden netsim fixtures pin, so the healthy halves of this pack are
// directly comparable to them.
func degradedPackBoundary(topo mesh.Topology) (*sharding.Task, error) {
	src, err := topo.Slice([]int{2, 4}, 0)
	if err != nil {
		return nil, err
	}
	dst, err := topo.Slice([]int{2, 4}, 8)
	if err != nil {
		return nil, err
	}
	return sharding.NewTask(tensor.MustShape(128, 128, 8), tensor.Float32,
		src, sharding.MustParse("RS01R"), dst, sharding.MustParse("S01RR"))
}

// degradedPackOptions is the deterministic planning configuration every
// pack row uses (node-budgeted DFS, fixed seed — machine-independent).
var degradedPackOptions = resharding.Options{
	Strategy:  resharding.Broadcast,
	Scheduler: resharding.SchedEnsemble,
	Seed:      1,
	DFSNodes:  20000,
	Chunks:    8,
}

// overlayTouches reports whether a fault set degrades hardware the
// boundary can observe: a straggler among the involved hosts, or a link
// fault with both endpoints involved.
func overlayTouches(task *sharding.Task, fs mesh.FaultSet) bool {
	involved := map[int]bool{}
	for _, m := range []*mesh.Mesh{task.Src.Mesh, task.Dst.Mesh} {
		for _, h := range m.Hosts() {
			involved[h] = true
		}
	}
	for _, h := range fs.Hosts {
		if involved[h.Host] {
			return true
		}
	}
	for _, l := range fs.Links {
		if involved[l.A] && involved[l.B] {
			return true
		}
	}
	return false
}

// DegradedScenarioPack plans the golden boundary healthy and under every
// registry fault scenario on each preset, through one Planner session per
// preset — so the healthy plan is cached once and every degraded variant
// is a ReplanDegraded against it, exactly the serving path. It errors if
// a degraded plan ever beats the healthy makespan, if a scenario that
// degrades observed hardware fails to re-key the boundary, or if one that
// degrades only uninvolved hardware (e.g. a straggler outside the
// boundary's hosts) re-keys it anyway — both partition failures would
// silently poison the serving cache.
func DegradedScenarioPack(ctx context.Context) ([]DegradedScenarioRow, error) {
	reg := mesh.DefaultRegistry()
	var rows []DegradedScenarioRow
	for _, p := range degradedPackPresets() {
		task, err := degradedPackBoundary(p.Topo)
		if err != nil {
			return nil, fmt.Errorf("%s: boundary: %v", p.Name, err)
		}
		planner := resharding.NewPlanner(resharding.WithTopology(p.Topo))
		healthyPlan, healthySim, err := planner.Plan(ctx, task, degradedPackOptions)
		if err != nil {
			return nil, fmt.Errorf("%s: healthy plan: %v", p.Name, err)
		}
		healthyKey := resharding.CacheKey(task, planner.ResolveOptions(degradedPackOptions))
		for _, scenario := range reg.FaultScenarioNames() {
			fs, err := reg.BuildFaultScenario(scenario, p.Topo)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: scenario: %v", p.Name, scenario, err)
			}
			degPlan, degSim, err := planner.ReplanDegraded(ctx, task, degradedPackOptions, fs)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: replan: %v", p.Name, scenario, err)
			}
			// The rigorous monotonicity guarantee holds plan-for-plan (see
			// the FuzzDegradedPlan property); comparing two independently
			// searched plans additionally relies on the heuristic gap
			// being smaller than the fault penalty. These fixed scenarios
			// degrade involved links/hosts by at least 2x and planning is
			// fully deterministic, so this is a stable regression gate,
			// not a flaky property.
			if degSim.Makespan < healthySim.Makespan {
				return nil, fmt.Errorf("%s/%s: degraded makespan %g beats healthy %g",
					p.Name, scenario, degSim.Makespan, healthySim.Makespan)
			}
			degTask, err := task.OnTopology(mesh.MustFaulted(p.Topo, fs))
			if err != nil {
				return nil, fmt.Errorf("%s/%s: rebind: %v", p.Name, scenario, err)
			}
			rekeyed := resharding.CacheKey(degTask, planner.ResolveOptions(degradedPackOptions)) != healthyKey
			if touched := overlayTouches(task, fs); touched != rekeyed {
				return nil, fmt.Errorf("%s/%s: overlay touches boundary = %v but re-keyed = %v",
					p.Name, scenario, touched, rekeyed)
			}
			rows = append(rows, DegradedScenarioRow{
				Preset:           p.Name,
				Scenario:         scenario,
				HealthyMakespan:  healthySim.Makespan,
				DegradedMakespan: degSim.Makespan,
				DeltaPct:         100 * (degSim.Makespan - healthySim.Makespan) / healthySim.Makespan,
				HealthyGbps:      healthySim.EffectiveGbps,
				DegradedGbps:     degSim.EffectiveGbps,
				Replanned:        !samePlanShape(healthyPlan, degPlan),
			})
		}
	}
	return rows, nil
}

// samePlanShape reports whether two plans pick the same senders in the
// same order.
func samePlanShape(a, b *resharding.Plan) bool {
	if len(a.Order) != len(b.Order) || len(a.SenderOf) != len(b.SenderOf) {
		return false
	}
	for i := range a.Order {
		if a.Order[i] != b.Order[i] {
			return false
		}
	}
	for k, v := range a.SenderOf {
		if b.SenderOf[k] != v {
			return false
		}
	}
	return true
}

// RenderDegradedRows formats the pack as an aligned table.
func RenderDegradedRows(rows []DegradedScenarioRow) string {
	var b strings.Builder
	b.WriteString("Degraded-topology scenario pack (healthy vs degraded makespan):\n")
	fmt.Fprintf(&b, "  %-10s %-10s %14s %14s %9s %9s\n",
		"preset", "scenario", "healthy (s)", "degraded (s)", "delta", "replanned")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-10s %-10s %14.6f %14.6f %+8.1f%% %9v\n",
			r.Preset, r.Scenario, r.HealthyMakespan, r.DegradedMakespan, r.DeltaPct, r.Replanned)
	}
	return b.String()
}

// WriteDegradedJSON writes the pack rows as a JSON array (the
// BENCH_degraded.json artifact format).
func WriteDegradedJSON(path string, rows []DegradedScenarioRow) error {
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
