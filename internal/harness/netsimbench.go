package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"

	"alpacomm/internal/mesh"
	"alpacomm/internal/netsim"
	"alpacomm/internal/resharding"
	"alpacomm/internal/service"
	"alpacomm/internal/sharding"
	"alpacomm/internal/tensor"
)

// NetsimBenchRow is one measured hot path of the allocation-free netsim
// core, in the artifact's JSON format (BENCH_netsim.json in CI).
type NetsimBenchRow struct {
	// Name identifies the workload ("plan_build", "autotune_cell",
	// "served_cache_miss", "served_cache_hit", "served_cache_hit_binary",
	// "netsim_replay").
	Name string `json:"name"`
	// NsPerOp is wall time per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp is heap allocations per operation (testing.Benchmark's
	// ReportAllocs accounting).
	AllocsPerOp int64 `json:"allocs_per_op"`
	// BytesPerOp is heap bytes per operation.
	BytesPerOp int64 `json:"bytes_per_op"`
	// Iterations is the measured iteration count.
	Iterations int `json:"iterations"`
}

// netsimBenchTask builds the Fig. 6-sized planning problem the netsim
// benchmarks share: (2,4) -> (2,4) meshes on a 4-host p3 cluster,
// RS01R -> S01RR over a (1024,1024,64) fp32 tensor.
func netsimBenchTask() (*sharding.Task, error) {
	cluster := mesh.AWSP3Cluster(4)
	src, err := cluster.Slice([]int{2, 4}, 0)
	if err != nil {
		return nil, err
	}
	dst, err := cluster.Slice([]int{2, 4}, 8)
	if err != nil {
		return nil, err
	}
	return sharding.NewTask(tensor.MustShape(1024, 1024, 64), tensor.Float32,
		src, sharding.MustParse("RS01R"), dst, sharding.MustParse("S01RR"))
}

// netsimBenchOpts is the deterministic planning configuration (node-budgeted
// DFS, fixed seed) every netsim benchmark row uses.
var netsimBenchOpts = resharding.Options{
	Strategy:  resharding.Broadcast,
	Scheduler: resharding.SchedEnsemble,
	Seed:      1,
	DFSNodes:  resharding.DefaultAutotuneDFSNodes,
	Chunks:    64,
}

// NetsimBench measures the netsim/planner hot paths with
// testing.Benchmark and reports ns/op + allocs/op per workload:
//
//   - plan_build: task decomposition + ensemble scheduling (no simulation);
//   - autotune_cell: one strategy x scheduler grid cell — plan + chunk-level
//     simulation, the unit of work an Autotune sweep fans out;
//   - served_cache_miss: the plan service's cold path — canonical cache key,
//     plan, simulate (trace-free, as the serving daemon does) through a
//     bounded LRU PlanCache;
//   - served_cache_hit / served_cache_hit_binary: the plan service's hot
//     path measured through the real HTTP handler — request decode, parse
//     memo, keyed cache lookup, pre-serialized response write — in each
//     wire format;
//   - netsim_replay: the raw discrete-event engine replaying a 1000-transfer
//     schedule on one reused arena (ClusterNet.Reset between runs).
func NetsimBench() ([]NetsimBenchRow, error) {
	task, err := netsimBenchTask()
	if err != nil {
		return nil, err
	}
	var rows []NetsimBenchRow
	record := func(name string, r testing.BenchmarkResult) {
		rows = append(rows, NetsimBenchRow{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		})
	}
	var benchErr error
	fail := func(b *testing.B, err error) {
		benchErr = err
		b.FailNow()
	}

	record("plan_build", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t, err := netsimBenchTask()
			if err != nil {
				fail(b, err)
			}
			if _, err := resharding.NewPlan(t, netsimBenchOpts); err != nil {
				fail(b, err)
			}
		}
	}))
	if benchErr != nil {
		return nil, benchErr
	}

	record("autotune_cell", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			plan, err := resharding.NewPlanContext(context.Background(), task, netsimBenchOpts)
			if err != nil {
				fail(b, err)
			}
			// Autotune trials compare timings only (the winner alone gets a
			// full trace), so a grid cell simulates trace-free.
			if _, err := plan.SimulateNoTrace(); err != nil {
				fail(b, err)
			}
		}
	}))
	if benchErr != nil {
		return nil, benchErr
	}

	record("served_cache_miss", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		ctx := context.Background()
		for i := 0; i < b.N; i++ {
			// A fresh session per iteration keeps every lookup on the miss
			// path, as a cold key is on the serving daemon — measuring the
			// full served cold cost including the ctx-aware coalescing.
			// Trace-free simulation matches the serving configuration:
			// responses carry timings, never event traces.
			planner := resharding.NewPlanner(resharding.WithLRUCache(4), resharding.WithTraceFreeSim())
			if _, _, err := planner.Plan(ctx, task, netsimBenchOpts); err != nil {
				fail(b, err)
			}
		}
	}))
	if benchErr != nil {
		return nil, benchErr
	}

	for _, wire := range []struct {
		name   string
		accept string
	}{
		{"served_cache_hit", ""},
		{"served_cache_hit_binary", service.ContentTypeBinary},
	} {
		record(wire.name, testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			srv := service.New(service.Config{})
			body, err := json.Marshal(servedBenchRequest())
			if err != nil {
				fail(b, err)
			}
			rd := bytes.NewReader(body)
			req, err := http.NewRequest(http.MethodPost, "/v2/plan", replayBody{rd})
			if err != nil {
				fail(b, err)
			}
			req.Header.Set("Content-Type", "application/json")
			if wire.accept != "" {
				req.Header.Set("Accept", wire.accept)
			}
			w := &discardResponseWriter{h: http.Header{}}
			// One warm request fills the cache, the parse memo and the
			// pre-serialized bodies; everything after is the hot hit path.
			srv.ServeHTTP(w, req)
			if w.status != http.StatusOK {
				fail(b, fmt.Errorf("warm request: status %d", w.status))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := rd.Seek(0, io.SeekStart); err != nil {
					fail(b, err)
				}
				w.status = 0
				srv.ServeHTTP(w, req)
				if w.status != http.StatusOK {
					fail(b, fmt.Errorf("status %d", w.status))
				}
			}
		}))
		if benchErr != nil {
			return nil, benchErr
		}
	}

	record("netsim_replay", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		net := netsim.NewClusterNet(mesh.AWSP3Cluster(4))
		for i := 0; i < b.N; i++ {
			net.Reset()
			if err := NetsimReplayTransfers(net); err != nil {
				fail(b, err)
			}
			if _, err := net.Run(); err != nil {
				fail(b, err)
			}
		}
	}))
	if benchErr != nil {
		return nil, benchErr
	}
	return rows, nil
}

// servedBenchRequest is the wire form of netsimBenchTask + netsimBenchOpts:
// empty strategy/scheduler mean the service defaults (broadcast +
// ensemble) and a zero dfs_nodes is forced to the deterministic budget, so
// the served plan is the same plan the direct rows build.
func servedBenchRequest() service.PlanRequest {
	return service.PlanRequest{
		Topology: service.TopologyRef{Name: "p3", Hosts: 4},
		Shape:    []int{1024, 1024, 64},
		Src:      service.Endpoint{Mesh: "2x4@0", Spec: "RS01R"},
		Dst:      service.Endpoint{Mesh: "2x4@8", Spec: "S01RR"},
		Options:  service.PlanOptions{Seed: 1, Chunks: 64},
	}
}

// replayBody is a rewindable request body: the benchmark seeks it back to
// the start between iterations instead of allocating a fresh reader.
type replayBody struct{ *bytes.Reader }

func (replayBody) Close() error { return nil }

// discardResponseWriter records the status and drops the body, so the
// served benchmarks measure the handler, not a network stack.
type discardResponseWriter struct {
	h      http.Header
	status int
}

func (d *discardResponseWriter) Header() http.Header         { return d.h }
func (d *discardResponseWriter) WriteHeader(s int)           { d.status = s }
func (d *discardResponseWriter) Write(p []byte) (int, error) { return len(p), nil }

// NetsimReplayTransfers issues the engine-contention workload shared by
// the repository's BenchmarkNetsim and the netsim_replay artifact row:
// 1000 cross-host transfers contending for the 8 NIC directions of a
// 4-host p3 cluster (the net must be over a 16-device topology).
func NetsimReplayTransfers(net *netsim.ClusterNet) error {
	topo := net.Topo
	for j := 0; j < 1000; j++ {
		src := j % 15
		dst := (j + 1) % 16
		if topo.HostOf(src) == topo.HostOf(dst) {
			dst = (dst + 4) % 16
		}
		if _, err := net.Transfer(netsim.Plain("t"), src, dst, 1<<20, j); err != nil {
			return err
		}
	}
	return nil
}

// WriteNetsimBenchJSON writes netsim benchmark rows as a JSON array, the
// artifact format uploaded next to BENCH_service.json.
func WriteNetsimBenchJSON(path string, rows []NetsimBenchRow) error {
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// RenderNetsimBenchRows formats netsim benchmark rows as a fixed-width
// table.
func RenderNetsimBenchRows(rows []NetsimBenchRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "netsim core hot paths\n")
	fmt.Fprintf(&b, "%-20s %14s %12s %12s %8s\n", "workload", "ns/op", "allocs/op", "B/op", "iters")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s %14.0f %12d %12d %8d\n", r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp, r.Iterations)
	}
	return b.String()
}
