package harness

import (
	"context"
	"fmt"
	"strings"

	"alpacomm/internal/mesh"
	"alpacomm/internal/model"
	"alpacomm/internal/pipeline"
	"alpacomm/internal/resharding"
	"alpacomm/internal/tensor"
)

// E2ERow is one bar of Fig. 7: a (model case, method) throughput.
type E2ERow struct {
	Model    string
	Case     string
	Method   string
	TFLOPS   float64
	IterTime float64
}

// e2eCase describes one Table 3 configuration.
type e2eCase struct {
	model    string
	name     string
	hosts    int
	pc       model.ParallelConfig
	dtype    tensor.DType
	batch    int
	microB   int
	workload func(pc model.ParallelConfig, dt tensor.DType, batch, mb int) (*model.Workload, error)
	device   model.DeviceSpec
}

// table3Cases returns the six Table 3 rows. GPT runs on 2 hosts (8 V100);
// U-Transformer on 4 hosts (16 V100) with its two stages each spanning 2
// hosts, so the skip tensors cross the slow inter-host links — the §5.2
// bottleneck.
func table3Cases() []e2eCase {
	gpt := func(g model.GPTConfig) func(pc model.ParallelConfig, dt tensor.DType, batch, mb int) (*model.Workload, error) {
		return func(pc model.ParallelConfig, dt tensor.DType, batch, mb int) (*model.Workload, error) {
			return model.NewGPTWorkload(g, pc, dt, batch, mb)
		}
	}
	ut := func(u model.UTransConfig) func(pc model.ParallelConfig, dt tensor.DType, batch, mb int) (*model.Workload, error) {
		return func(pc model.ParallelConfig, dt tensor.DType, batch, mb int) (*model.Workload, error) {
			return model.NewUTransWorkload(u, pc, dt, batch, mb)
		}
	}
	return []e2eCase{
		{"GPT", "case1-1.3B", 2, model.ParallelConfig{DP: 2, OP: 2, PP: 2}, tensor.Float16, 1024, 2, gpt(model.GPT1_3B()), model.V100()},
		{"GPT", "case1-2.6B", 2, model.ParallelConfig{DP: 2, OP: 2, PP: 2}, tensor.Float16, 1024, 2, gpt(model.GPT2_6B()), model.V100()},
		{"GPT", "case2-2.6B", 2, model.ParallelConfig{DP: 4, OP: 1, PP: 2}, tensor.Float16, 1024, 2, gpt(model.GPT2_6B()), model.V100()},
		{"U-Trans", "case1-1B-fp16", 4, model.ParallelConfig{DP: 2, OP: 4, PP: 2}, tensor.Float16, 2048, 2, ut(model.UTrans1B()), model.V100Conv()},
		{"U-Trans", "case2-2.1B-fp16", 4, model.ParallelConfig{DP: 2, OP: 4, PP: 2}, tensor.Float16, 2048, 2, ut(model.UTrans2_1B()), model.V100Conv()},
		{"U-Trans", "case3-2.1B-fp32", 4, model.ParallelConfig{DP: 2, OP: 4, PP: 2}, tensor.Float32, 2048, 2, ut(model.UTrans2_1B()), model.V100Conv()},
	}
}

// e2eMethod is one bar group of Fig. 7.
type e2eMethod struct {
	Name     string
	Reshard  resharding.Options
	Schedule pipeline.Kind
	Overlap  bool
}

// e2eMethods returns the five Fig. 7 systems.
func e2eMethods() []e2eMethod {
	return []e2eMethod{
		{"Send/Recv", resharding.Options{Strategy: resharding.SendRecv, Scheduler: resharding.SchedGreedyLoad}, pipeline.OneFOneB, false},
		{"Alpa", resharding.Options{Strategy: resharding.Alpa, Scheduler: resharding.SchedGreedyLoad}, pipeline.OneFOneB, false},
		{"Broadcast", resharding.Options{Strategy: resharding.Broadcast, Scheduler: resharding.SchedEnsemble, Seed: 1}, pipeline.OneFOneB, false},
		{"Ours", resharding.Options{Strategy: resharding.Broadcast, Scheduler: resharding.SchedEnsemble, Seed: 1}, pipeline.Eager1F1B, true},
		{"Signal Send/Recv", resharding.Options{Strategy: resharding.Signal, Scheduler: resharding.SchedNaive}, pipeline.OneFOneB, false},
	}
}

// TrainingRunner runs one assembled training job under a context; injected
// by the root package to avoid an import cycle (the facade imports
// harness's row types... the facade owns TrainingJob, so the harness
// receives a runner). Runners thread the context into the job's planning
// session, so a harness sweep is cancellable between and inside cases.
type TrainingRunner func(ctx context.Context, cluster mesh.Topology, device model.DeviceSpec, w *model.Workload,
	pc model.ParallelConfig, sched pipeline.Kind, overlap bool, opts resharding.Options) (iterTime, tflops float64, err error)

// Fig7 reproduces Fig. 7's eighteen bars (6 cases x 5 methods) through the
// injected training runner on the paper's p3 testbed. batchScale >= 1
// divides the global batch for fast runs.
func Fig7(ctx context.Context, run TrainingRunner, batchScale int) ([]E2ERow, error) {
	return Fig7On(ctx, run, batchScale, func(hosts int) (mesh.Topology, error) {
		return mesh.AWSP3Cluster(hosts), nil
	})
}

// Fig7On is Fig7 with the hardware swapped: topo builds the cluster for
// each case's host count, so the Table 3 sweep can run on DGX-A100 or
// mixed fabrics instead of the paper's homogeneous testbed.
func Fig7On(ctx context.Context, run TrainingRunner, batchScale int, topo func(hosts int) (mesh.Topology, error)) ([]E2ERow, error) {
	if batchScale < 1 {
		batchScale = 1
	}
	var out []E2ERow
	for _, tc := range table3Cases() {
		batch := tc.batch / batchScale
		if batch < tc.microB*tc.pc.DP*4 {
			batch = tc.microB * tc.pc.DP * 4
		}
		w, err := tc.workload(tc.pc, tc.dtype, batch, tc.microB)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %v", tc.model, tc.name, err)
		}
		cluster, err := topo(tc.hosts)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: topology: %v", tc.model, tc.name, err)
		}
		for _, m := range e2eMethods() {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			iter, tflops, err := run(ctx, cluster, tc.device, w, tc.pc, m.Schedule, m.Overlap, m.Reshard)
			if err != nil {
				return nil, fmt.Errorf("%s/%s/%s: %w", tc.model, tc.name, m.Name, err)
			}
			out = append(out, E2ERow{Model: tc.model, Case: tc.name, Method: m.Name, TFLOPS: tflops, IterTime: iter})
		}
	}
	return out, nil
}

// Fig9Row is one point of the overlap ablation.
type Fig9Row struct {
	MicroBatches int
	Method       string
	TFLOPS       float64
}

// Fig9 reproduces the Fig. 9 ablation: U-Transformer (1B, fp16) with 4 and
// 32 micro-batches under Broadcast (no overlap), Overlap (1F1B), and
// Eager-1F1B.
func Fig9(ctx context.Context, run TrainingRunner) ([]Fig9Row, error) {
	pc := model.ParallelConfig{DP: 2, OP: 4, PP: 2}
	cluster := mesh.AWSP3Cluster(4)
	methods := []e2eMethod{
		{"Broadcast", resharding.Options{Strategy: resharding.Broadcast, Scheduler: resharding.SchedEnsemble, Seed: 1}, pipeline.OneFOneB, false},
		{"Overlap", resharding.Options{Strategy: resharding.Broadcast, Scheduler: resharding.SchedEnsemble, Seed: 1}, pipeline.OneFOneB, true},
		{"Eager-1F1B", resharding.Options{Strategy: resharding.Broadcast, Scheduler: resharding.SchedEnsemble, Seed: 1}, pipeline.Eager1F1B, true},
	}
	var out []Fig9Row
	for _, mb := range []int{4, 32} {
		// Same micro-batch size, different batch size (§5.3.2): the global
		// batch is micro-batch-size x dp x #micro-batches.
		w, err := model.NewUTransWorkload(model.UTrans1B(), pc, tensor.Float16, 2*pc.DP*mb, 2)
		if err != nil {
			return nil, err
		}
		for _, m := range methods {
			_, tflops, err := run(ctx, cluster, model.V100Conv(), w, pc, m.Schedule, m.Overlap, m.Reshard)
			if err != nil {
				return nil, fmt.Errorf("fig9 %d/%s: %v", mb, m.Name, err)
			}
			out = append(out, Fig9Row{MicroBatches: mb, Method: m.Name, TFLOPS: tflops})
		}
	}
	return out, nil
}

// RenderE2ERows formats Fig. 7 rows.
func RenderE2ERows(title string, rows []E2ERow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-8s %-16s %-18s %12s %12s\n", "model", "case", "method", "TFLOPS", "iter (s)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-16s %-18s %12.1f %12.3f\n", r.Model, r.Case, r.Method, r.TFLOPS, r.IterTime)
	}
	return b.String()
}

// RenderFig9Rows formats the overlap ablation.
func RenderFig9Rows(rows []Fig9Row) string {
	var b strings.Builder
	b.WriteString("Fig 9: overlap ablation (U-Transformer 1B fp16)\n")
	fmt.Fprintf(&b, "%-6s %-12s %12s\n", "#mb", "method", "TFLOPS")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6d %-12s %12.1f\n", r.MicroBatches, r.Method, r.TFLOPS)
	}
	return b.String()
}

// Table1Report renders the paper's Table 1 from the memory model.
func Table1Report() string {
	m := model.GPTLayerMemory(1024, 12288, 2, 8)
	var b strings.Builder
	b.WriteString("Table 1: GPT-3 layer per-GPU memory (S=1024 H=12288 B=2 TMP=8)\n")
	fmt.Fprintf(&b, "%-34s %16s\n", "quantity", "value")
	fmt.Fprintf(&b, "%-34s %15.0fM\n", "#parameter (12H^2/TMP)", float64(m.Params)/(1<<20))
	fmt.Fprintf(&b, "%-34s %15.0fM\n", "#optimizer state (24H^2/TMP)", float64(m.OptStateParams)/(1<<20))
	fmt.Fprintf(&b, "%-34s %15.0fM\n", "#activation elements (BSH)", float64(m.ActivationElements)/(1<<20))
	fmt.Fprintf(&b, "%-34s %14.2fGB\n", "weights+optimizer (168H^2/TMP)", float64(m.WeightOptBytes)/(1<<30))
	fmt.Fprintf(&b, "%-34s %14.0fMB\n", "activation (2BSH)", float64(m.ActivationBytes)/(1<<20))
	return b.String()
}
