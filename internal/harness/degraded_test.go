package harness

import (
	"context"
	"strings"
	"testing"
)

// TestDegradedScenarioPack: the pack runs every scenario on every preset,
// enforces its own invariants (degraded never beats healthy, cache keys
// partition exactly when the overlay is observable), and is deterministic
// across runs.
func TestDegradedScenarioPack(t *testing.T) {
	rows, err := DegradedScenarioPack(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(degradedPackPresets()) * 3 // link-down, brownout, straggler
	if len(rows) != wantRows {
		t.Fatalf("pack produced %d rows, want %d", len(rows), wantRows)
	}
	sawSlowdown := false
	for _, r := range rows {
		if r.DegradedMakespan < r.HealthyMakespan {
			t.Errorf("%s/%s: degraded %g beats healthy %g", r.Preset, r.Scenario, r.DegradedMakespan, r.HealthyMakespan)
		}
		if r.DeltaPct > 0 {
			sawSlowdown = true
		}
	}
	if !sawSlowdown {
		t.Error("no scenario slowed any preset down — the overlay is not reaching the simulator")
	}

	again, err := DegradedScenarioPack(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		if rows[i] != again[i] {
			t.Fatalf("row %d differs across runs: %+v vs %+v", i, rows[i], again[i])
		}
	}

	table := RenderDegradedRows(rows)
	for _, want := range []string{"p3", "dgx-a100", "mixed", "brownout", "link-down", "straggler"} {
		if !strings.Contains(table, want) {
			t.Errorf("rendered table missing %q", want)
		}
	}
}
