package harness

import (
	"context"
	"os"
	"strings"
	"testing"

	"alpacomm/internal/mesh"
	"alpacomm/internal/model"
	"alpacomm/internal/pipeline"
	"alpacomm/internal/resharding"
)

// get returns the row for (case, method) or fails.
func get(t *testing.T, rows []MicroRow, c, m string) MicroRow {
	t.Helper()
	for _, r := range rows {
		if r.Case == c && r.Method == m {
			return r
		}
	}
	t.Fatalf("no row for %s/%s", c, m)
	return MicroRow{}
}

// TestFig5aShape pins the paper's Fig. 5a: Send/Recv effective bandwidth
// decays ~1/n with receiver count; Ours stays flat; Alpa collapses at the
// uneven 3-GPU point.
func TestFig5aShape(t *testing.T) {
	rows, err := Fig5a(16)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(rows))
	}
	sr1 := get(t, rows, "1gpu", "Send/Recv").EffGbps
	sr4 := get(t, rows, "4gpu", "Send/Recv").EffGbps
	if sr1/sr4 < 3.5 {
		t.Errorf("send/recv should decay ~4x from 1 to 4 GPUs: %v -> %v", sr1, sr4)
	}
	ours1 := get(t, rows, "1gpu", "Ours").EffGbps
	ours4 := get(t, rows, "4gpu", "Ours").EffGbps
	if ours4 < ours1*0.9 {
		t.Errorf("ours should stay flat: %v -> %v", ours1, ours4)
	}
	alpa2 := get(t, rows, "2gpu", "Alpa").EffGbps
	alpa3 := get(t, rows, "3gpu", "Alpa").EffGbps
	if alpa3 > alpa2/2 {
		t.Errorf("alpa should collapse at the uneven 3-GPU point: %v vs %v", alpa3, alpa2)
	}
	ours3 := get(t, rows, "3gpu", "Ours").EffGbps
	if ours3 < ours1*0.9 {
		t.Errorf("ours must handle the uneven point natively: %v vs %v", ours3, ours1)
	}
}

// TestFig5bShape pins Fig. 5b: Ours flat across 1-4 receiver hosts; Alpa
// degrades for multi-host receivers and collapses at 3 hosts.
func TestFig5bShape(t *testing.T) {
	rows, err := Fig5b(16)
	if err != nil {
		t.Fatal(err)
	}
	ours1 := get(t, rows, "1host", "Ours").EffGbps
	ours4 := get(t, rows, "4host", "Ours").EffGbps
	if ours4 < ours1*0.85 {
		t.Errorf("ours should stay flat across hosts: %v -> %v", ours1, ours4)
	}
	alpa2 := get(t, rows, "2host", "Alpa").EffGbps
	ours2 := get(t, rows, "2host", "Ours").EffGbps
	if alpa2 > ours2 {
		t.Errorf("multi-host alpa (%v) must not beat ours (%v)", alpa2, ours2)
	}
	alpa3 := get(t, rows, "3host", "Alpa").EffGbps
	if alpa3 > alpa2/2 {
		t.Errorf("alpa should collapse at 3 hosts (uneven): %v vs %v", alpa3, alpa2)
	}
	sr4 := get(t, rows, "4host", "Send/Recv").EffGbps
	if sr4 > ours4/4 {
		t.Errorf("send/recv at 4 hosts (%v) should be ~8x below ours (%v)", sr4, ours4)
	}
}

// TestFig6Shape pins Fig. 6's qualitative outcomes: parity on case 1,
// clear wins on cases 3, 4 and 9 (reordering uses both sender NICs),
// and wins on 7 (pipelining vs cross-node all-gather).
func TestFig6Shape(t *testing.T) {
	rows, err := Fig6(16)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 27 {
		t.Fatalf("rows = %d, want 27", len(rows))
	}
	// Case 1: parity between Alpa and Ours.
	a1, o1 := get(t, rows, "case1", "Alpa").EffGbps, get(t, rows, "case1", "Ours").EffGbps
	if o1 < a1*0.9 || o1 > a1*1.3 {
		t.Errorf("case1 should be parity: alpa %v ours %v", a1, o1)
	}
	// Cases 3, 4, 9: ours clearly faster than Alpa.
	for _, c := range []string{"case3", "case4", "case9"} {
		a, o := get(t, rows, c, "Alpa").EffGbps, get(t, rows, c, "Ours").EffGbps
		if o < a*1.3 {
			t.Errorf("%s: ours (%v) should clearly beat alpa (%v)", c, o, a)
		}
	}
	// Case 7: ours faster than Alpa (pipelined vs staged all-gather).
	a7, o7 := get(t, rows, "case7", "Alpa").EffGbps, get(t, rows, "case7", "Ours").EffGbps
	if o7 < a7*1.3 {
		t.Errorf("case7: ours (%v) should beat alpa (%v)", o7, a7)
	}
	// Ours never loses to Send/Recv anywhere.
	for _, c := range []string{"case1", "case2", "case3", "case4", "case5", "case6", "case7", "case8", "case9"} {
		sr, o := get(t, rows, c, "Send/Recv").EffGbps, get(t, rows, c, "Ours").EffGbps
		if o < sr*0.99 {
			t.Errorf("%s: ours (%v) lost to send/recv (%v)", c, o, sr)
		}
	}
}

// TestFig8Shape pins the load-balance ablation: all methods tie on cases 1
// and 8 (pure point-to-point / single broadcast), naive congests on case 2,
// and Ours is never worse than either baseline.
func TestFig8Shape(t *testing.T) {
	rows, err := Fig8(16)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []string{"case1", "case8"} {
		n := get(t, rows, c, "Naive").EffGbps
		o := get(t, rows, c, "Ours").EffGbps
		if o < n*0.95 || o > n*1.05 {
			t.Errorf("%s: all methods should tie (naive %v ours %v)", c, n, o)
		}
	}
	n2 := get(t, rows, "case2", "Naive").EffGbps
	l2 := get(t, rows, "case2", "LoadBalanceOnly").EffGbps
	if l2 < n2*1.5 {
		t.Errorf("case2: load balance (%v) should fix naive congestion (%v)", l2, n2)
	}
	for _, c := range []string{"case1", "case2", "case3", "case4", "case5", "case6", "case7", "case8", "case9"} {
		n := get(t, rows, c, "Naive").EffGbps
		l := get(t, rows, c, "LoadBalanceOnly").EffGbps
		o := get(t, rows, c, "Ours").EffGbps
		if o < n*0.99 || o < l*0.99 {
			t.Errorf("%s: ours (%v) must dominate naive (%v) and LB (%v)", c, o, n, l)
		}
	}
	// Cases 3/4/9: ordering beats load balance alone.
	for _, c := range []string{"case3", "case4", "case9"} {
		l := get(t, rows, c, "LoadBalanceOnly").EffGbps
		o := get(t, rows, c, "Ours").EffGbps
		if o < l*1.2 {
			t.Errorf("%s: ordering should add on top of load balance (%v vs %v)", c, o, l)
		}
	}
}

// stubRunner returns throughput keyed by method so Fig7/Fig9 plumbing can
// be tested without the full simulation.
func stubRunner(tflops map[string]float64) TrainingRunner {
	return func(ctx context.Context, cluster mesh.Topology, device model.DeviceSpec, w *model.Workload,
		pc model.ParallelConfig, sched pipeline.Kind, overlap bool, opts resharding.Options) (float64, float64, error) {
		key := opts.Strategy.String()
		if overlap {
			key += "+overlap"
		}
		if sched == pipeline.Eager1F1B {
			key += "+eager"
		}
		return 1.0, tflops[key], nil
	}
}

func TestFig7Enumeration(t *testing.T) {
	vals := map[string]float64{
		"send/recv": 100, "alpa": 200, "broadcast": 210, "broadcast+overlap+eager": 280, "signal": 300,
	}
	rows, err := Fig7(context.Background(), stubRunner(vals), 8)
	if err != nil {
		t.Fatal(err)
	}
	// 6 cases x 5 methods.
	if len(rows) != 30 {
		t.Fatalf("rows = %d, want 30", len(rows))
	}
	models := map[string]int{}
	for _, r := range rows {
		models[r.Model]++
		if r.TFLOPS <= 0 {
			t.Errorf("row %+v has no throughput", r)
		}
	}
	if models["GPT"] != 15 || models["U-Trans"] != 15 {
		t.Errorf("model split = %v", models)
	}
}

func TestFig9Enumeration(t *testing.T) {
	vals := map[string]float64{"broadcast": 100, "broadcast+overlap": 130, "broadcast+overlap+eager": 150}
	rows, err := Fig9(context.Background(), stubRunner(vals))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	seen := map[int]int{}
	for _, r := range rows {
		seen[r.MicroBatches]++
	}
	if seen[4] != 3 || seen[32] != 3 {
		t.Errorf("micro-batch groups = %v", seen)
	}
}

func TestRenderers(t *testing.T) {
	rows := []MicroRow{{Case: "c", Method: "m", EffGbps: 1, Makespan: 2, Units: 3}}
	if !strings.Contains(RenderMicroRows("T", rows), "eff-bw") {
		t.Error("micro render missing header")
	}
	e2e := []E2ERow{{Model: "GPT", Case: "c", Method: "m", TFLOPS: 1, IterTime: 2}}
	if !strings.Contains(RenderE2ERows("T", e2e), "TFLOPS") {
		t.Error("e2e render missing header")
	}
	f9 := []Fig9Row{{MicroBatches: 4, Method: "m", TFLOPS: 1}}
	if !strings.Contains(RenderFig9Rows(f9), "method") {
		t.Error("fig9 render missing header")
	}
}

func TestTable1Report(t *testing.T) {
	rep := Table1Report()
	for _, want := range []string{"216M", "432M", "2.95GB", "48MB", "24M"} {
		if !strings.Contains(rep, want) {
			t.Errorf("Table 1 report missing %q:\n%s", want, rep)
		}
	}
}

func TestTable2CaseConstruction(t *testing.T) {
	for _, tc := range table2Cases() {
		task, err := buildTable2Task(tc, 16)
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if len(task.Units) == 0 {
			t.Errorf("%s: no unit tasks", tc.name)
		}
	}
}

// TestChunkSweepMonotone: more chunks pipeline better (up to latency
// effects), and the sweep covers the documented K range.
func TestChunkSweepMonotone(t *testing.T) {
	rows, err := ChunkSweep(16)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 || rows[0].Chunks != 1 || rows[len(rows)-1].Chunks != 256 {
		t.Fatalf("sweep rows = %+v", rows)
	}
	if rows[len(rows)-1].EffGbps < rows[0].EffGbps*2 {
		t.Errorf("deep pipelining (%v Gbps) should far exceed K=1 (%v Gbps)",
			rows[len(rows)-1].EffGbps, rows[0].EffGbps)
	}
	if !strings.Contains(RenderChunkRows(rows), "chunks") {
		t.Error("render missing header")
	}
}

func TestMicroJSONRoundTrip(t *testing.T) {
	rows := []MicroRow{
		{Case: "case1", Method: "Ours", EffGbps: 19.9, Makespan: 0.86, Units: 2},
		{Case: "case2", Method: "Alpa", EffGbps: 9.9, Makespan: 1.7, Units: 2},
	}
	path := t.TempDir() + "/micro.json"
	if err := WriteMicroJSON(path, rows); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMicroJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != rows[0] || got[1] != rows[1] {
		t.Errorf("round trip = %+v", got)
	}
	if _, err := ReadMicroJSON(t.TempDir() + "/missing.json"); err == nil {
		t.Error("missing file should fail")
	}
}

func TestE2ETSVRoundTrip(t *testing.T) {
	rows := []E2ERow{
		{Model: "GPT", Case: "case1-1.3B", Method: "Ours", TFLOPS: 447.6, IterTime: 18.394},
		{Model: "U-Trans", Case: "case1-1B-fp16", Method: "Alpa", TFLOPS: 176.4, IterTime: 55.687},
	}
	path := t.TempDir() + "/e2e.tsv"
	if err := WriteE2ETSV(path, rows); err != nil {
		t.Fatal(err)
	}
	got, err := ReadE2ETSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Method != "Ours" || got[1].Model != "U-Trans" {
		t.Errorf("round trip = %+v", got)
	}
	if got[0].TFLOPS != 447.6 {
		t.Errorf("tflops = %v", got[0].TFLOPS)
	}
	bad := t.TempDir() + "/bad.tsv"
	os.WriteFile(bad, []byte("header\nonly\ttwo\n"), 0o644)
	if _, err := ReadE2ETSV(bad); err == nil {
		t.Error("malformed TSV should fail")
	}
}
