// Package collective builds communication-primitive op DAGs on top of the
// netsim engine: point-to-point sends, ring all-gather (NCCL-style), the
// paper's pipelined broadcast chain (§3.1), ring all-reduce, and all-to-all.
//
// Each builder registers transfer ops with a ClusterNet and returns, per
// participating device, the op that completes that device's part — so
// primitives compose into larger schedules through dependencies. Builders
// name ops with lazy netsim.Label tuples over one shared prefix, so no
// per-op string is formatted unless a trace is rendered.
package collective

import (
	"fmt"

	"alpacomm/internal/mesh"
	"alpacomm/internal/netsim"
)

// Result reports the completion ops of a primitive.
type Result struct {
	// DoneAt maps each participating device to the op after which the
	// device holds its final data. Devices that needed no transfer are
	// absent.
	DoneAt map[int]netsim.OpID
	// Ops lists every op the primitive registered, for accounting.
	Ops []netsim.OpID
}

// AllDone returns every completion op, for use as a dependency set.
func (r *Result) AllDone() []netsim.OpID {
	out := make([]netsim.OpID, 0, len(r.DoneAt))
	// Deterministic order: iterate devices ascending.
	max := -1
	for d := range r.DoneAt {
		if d > max {
			max = d
		}
	}
	for d := 0; d <= max; d++ {
		if id, ok := r.DoneAt[d]; ok {
			out = append(out, id)
		}
	}
	return out
}

// chunkSizes splits bytes into k near-even parts (floor boundaries), the
// same rule as tensor.PartitionBoundaries but over int64 byte counts.
func chunkSizes(bytes int64, k int) []int64 {
	out := make([]int64, k)
	prev := int64(0)
	for j := 1; j <= k; j++ {
		b := int64(j) * bytes / int64(k)
		out[j-1] = b - prev
		prev = b
	}
	return out
}

// DefaultChunks picks the broadcast pipelining depth for a message size:
// roughly one chunk per 4 MiB, clamped to [1, 128]. The paper uses K ≈ 100
// for its 1 GB messages; the latency term makes much larger K
// counterproductive.
func DefaultChunks(bytes int64) int {
	const target = 4 << 20
	k := int(bytes / target)
	if k < 1 {
		k = 1
	}
	if k > 128 {
		k = 128
	}
	return k
}

func validateDevices(c mesh.Topology, devices []int) error {
	seen := map[int]bool{}
	for _, d := range devices {
		if !c.ValidDevice(d) {
			return fmt.Errorf("collective: invalid device %d", d)
		}
		if seen[d] {
			return fmt.Errorf("collective: duplicate device %d", d)
		}
		seen[d] = true
	}
	return nil
}

// P2P registers one point-to-point send and returns its result.
func P2P(net *netsim.ClusterNet, label string, src, dst int, bytes int64, seq int, deps ...netsim.OpID) (*Result, error) {
	id, err := net.Transfer(netsim.Plain(label), src, dst, bytes, seq, deps...)
	if err != nil {
		return nil, err
	}
	return &Result{DoneAt: map[int]netsim.OpID{dst: id}, Ops: []netsim.OpID{id}}, nil
}

// BroadcastChain registers the paper's pipelined broadcast (§3.1, Fig. 3d):
// the message travels the chain hop by hop in `chunks` pipelined pieces, so
// every device both receives and forwards at full bandwidth. chain[0] is
// the sender; deps gate the sender's first chunk.
//
// With hop time t and K chunks the chain completes in ≈ t + (hops·t)/K,
// which approaches the single-copy lower bound t for large K.
func BroadcastChain(net *netsim.ClusterNet, label string, chain []int, bytes int64, chunks, seq int, deps ...netsim.OpID) (*Result, error) {
	if len(chain) < 2 {
		return nil, fmt.Errorf("collective: broadcast chain needs >= 2 devices, got %d", len(chain))
	}
	if err := validateDevices(net.Topo, chain); err != nil {
		return nil, err
	}
	if chunks < 1 {
		return nil, fmt.Errorf("collective: chunk count %d < 1", chunks)
	}
	if bytes < int64(chunks) {
		chunks = 1 // tiny message: no point pipelining
	}
	sizes := chunkSizes(bytes, chunks)
	hops := len(chain) - 1
	res := &Result{DoneAt: map[int]netsim.OpID{}}
	// prev[j] is the op of the previous chunk on hop j (pipeline ordering);
	// upstream is the op delivering the current chunk to chain[j].
	prev := make([]netsim.OpID, hops)
	havePrev := false
	var depBuf []netsim.OpID // reused per op; AddOp copies into its arena
	for i := 0; i < chunks; i++ {
		var upstream netsim.OpID
		haveUp := false
		for j := 0; j < hops; j++ {
			d := depBuf[:0]
			if haveUp {
				d = append(d, upstream) // chunk i arrived at chain[j]
			} else {
				d = append(d, deps...) // sender readiness
			}
			if havePrev {
				d = append(d, prev[j]) // chunk i-1 left this hop
			}
			depBuf = d
			// The first chunk pays the route's latency; later chunks are
			// streamed on the established route.
			xfer := net.Transfer
			if i > 0 {
				xfer = net.StreamTransfer
			}
			lbl := netsim.Label{Prefix: label, Kind: netsim.LabelChunkHop, A: int32(i), B: int32(j)}
			id, err := xfer(lbl, chain[j], chain[j+1], sizes[i], seq, d...)
			if err != nil {
				return nil, err
			}
			res.Ops = append(res.Ops, id)
			prev[j] = id
			upstream = id
			haveUp = true
		}
		havePrev = true
	}
	// Each device is done when the final chunk arrives.
	for j := 0; j < hops; j++ {
		res.DoneAt[chain[j+1]] = prev[j]
	}
	return res, nil
}

// RingAllGather registers an NCCL-style ring all-gather over the devices:
// each device starts holding 1/n of totalBytes; after n-1 rounds every
// device holds everything. startDeps gates each device's initial chunk
// (nil means available at t=0).
func RingAllGather(net *netsim.ClusterNet, label string, devices []int, totalBytes int64, seq int, startDeps map[int][]netsim.OpID) (*Result, error) {
	n := len(devices)
	if n < 2 {
		return nil, fmt.Errorf("collective: ring all-gather needs >= 2 devices, got %d", n)
	}
	if err := validateDevices(net.Topo, devices); err != nil {
		return nil, err
	}
	return ringRounds(net, label, devices, totalBytes, seq, startDeps, n-1)
}

// RingAllReduce registers a ring all-reduce (reduce-scatter followed by
// all-gather, 2(n-1) rounds) over the devices. Only the communication is
// modelled; reduction compute is treated as free.
func RingAllReduce(net *netsim.ClusterNet, label string, devices []int, totalBytes int64, seq int, startDeps map[int][]netsim.OpID) (*Result, error) {
	n := len(devices)
	if n < 2 {
		return nil, fmt.Errorf("collective: ring all-reduce needs >= 2 devices, got %d", n)
	}
	if err := validateDevices(net.Topo, devices); err != nil {
		return nil, err
	}
	return ringRounds(net, label, devices, totalBytes, seq, startDeps, 2*(n-1))
}

// ringRounds registers `rounds` rounds of neighbour sends over the ring:
// in round r, devices[i] sends chunk (i-r mod n) to its successor, gated on
// having received that chunk in the previous round.
func ringRounds(net *netsim.ClusterNet, label string, devices []int, totalBytes int64, seq int, startDeps map[int][]netsim.OpID, rounds int) (*Result, error) {
	n := len(devices)
	chunks := chunkSizes(totalBytes, n)
	res := &Result{DoneAt: map[int]netsim.OpID{}}
	ops := make([][]netsim.OpID, rounds)
	var depBuf []netsim.OpID
	for r := 0; r < rounds; r++ {
		ops[r] = make([]netsim.OpID, n)
		for i := 0; i < n; i++ {
			src, dst := devices[i], devices[(i+1)%n]
			chunk := ((i-r)%n + n) % n
			d := depBuf[:0]
			if r == 0 {
				d = append(d, startDeps[src]...)
			} else {
				d = append(d, ops[r-1][(i-1+n)%n]) // received this chunk last round
			}
			depBuf = d
			lbl := netsim.Label{Prefix: label, Kind: netsim.LabelRound, A: int32(r), B: int32(i)}
			id, err := net.Transfer(lbl, src, dst, chunks[chunk], seq, d...)
			if err != nil {
				return nil, err
			}
			res.Ops = append(res.Ops, id)
			ops[r][i] = id
		}
	}
	for i := 0; i < n; i++ {
		res.DoneAt[devices[i]] = ops[rounds-1][(i-1+n)%n]
	}
	return res, nil
}

// AllToAll registers an all-to-all: every device sends a distinct
// bytesPerPair message to every other device. A zero-duration join op per
// receiver marks completion.
func AllToAll(net *netsim.ClusterNet, label string, devices []int, bytesPerPair int64, seq int, startDeps map[int][]netsim.OpID) (*Result, error) {
	n := len(devices)
	if n < 2 {
		return nil, fmt.Errorf("collective: all-to-all needs >= 2 devices, got %d", n)
	}
	if err := validateDevices(net.Topo, devices); err != nil {
		return nil, err
	}
	res := &Result{DoneAt: map[int]netsim.OpID{}}
	incoming := make(map[int][]netsim.OpID, n)
	// Issue in rounds: in round o every device sends to the peer o
	// positions ahead, so each round uses disjoint send/recv resources
	// (standard all-to-all rotation).
	for o := 1; o < n; o++ {
		for i := 0; i < n; i++ {
			dst := devices[(i+o)%n]
			lbl := netsim.Label{Prefix: label, Kind: netsim.LabelPair, A: int32(devices[i]), B: int32(dst)}
			id, err := net.Transfer(lbl, devices[i], dst, bytesPerPair, seq+o, startDeps[devices[i]]...)
			if err != nil {
				return nil, err
			}
			res.Ops = append(res.Ops, id)
			incoming[dst] = append(incoming[dst], id)
		}
	}
	for _, dev := range devices {
		lbl := netsim.Label{Prefix: label, Kind: netsim.LabelJoin, A: int32(dev)}
		join, err := net.Sim.AddOp(lbl, 0, seq, nil, incoming[dev]...)
		if err != nil {
			return nil, err
		}
		res.DoneAt[dev] = join
	}
	return res, nil
}
