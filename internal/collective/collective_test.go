package collective

import (
	"math"
	"testing"

	"alpacomm/internal/mesh"
	"alpacomm/internal/netsim"
)

// fig3Cluster builds the §3.1 analysis setting: one sender host plus A
// receiver hosts, B devices each, NIC bandwidth 10 B/s, effectively free
// intra-host links, zero latency. Sending the full object (1000 B) across
// one NIC takes t = 100 s.
func fig3Cluster(aPlusOne, b int) *mesh.Cluster {
	c, err := mesh.NewCluster(aPlusOne, b, 1e12, 10, 0, 0)
	if err != nil {
		panic(err)
	}
	return c
}

const (
	fig3Bytes = int64(1000)
	fig3T     = 100.0 // fig3Bytes / NIC bandwidth
)

// receivers lists the devices of hosts 1..A (host 0 is the sender's).
func fig3Receivers(c *mesh.Cluster) []int {
	var out []int
	for h := 1; h < c.NumHosts; h++ {
		out = append(out, c.DevicesOnHost(h)...)
	}
	return out
}

// TestSendRecvLatency pins Fig. 3a: naive send/recv to A×B receivers costs
// A·B·t on the sender's NIC.
func TestSendRecvLatency(t *testing.T) {
	for _, cfg := range []struct{ a, b int }{{1, 2}, {2, 2}, {3, 4}} {
		c := fig3Cluster(cfg.a+1, cfg.b)
		net := netsim.NewClusterNet(c)
		for i, dst := range fig3Receivers(c) {
			if _, err := P2P(net, "sr", 0, dst, fig3Bytes, i); err != nil {
				t.Fatal(err)
			}
		}
		mk, err := net.Run()
		if err != nil {
			t.Fatal(err)
		}
		want := float64(cfg.a*cfg.b) * fig3T
		if math.Abs(mk-want) > 1e-6 {
			t.Errorf("A=%d B=%d: send/recv makespan = %v, want %v", cfg.a, cfg.b, mk, want)
		}
	}
}

// TestLocalAllGatherLatency pins Fig. 3b: scatter 1/B to each device of
// each receiver host, then a per-host all-gather on fast links: total ≈ A·t.
func TestLocalAllGatherLatency(t *testing.T) {
	for _, cfg := range []struct{ a, b int }{{2, 2}, {3, 2}, {2, 4}} {
		c := fig3Cluster(cfg.a+1, cfg.b)
		net := netsim.NewClusterNet(c)
		seq := 0
		for h := 1; h <= cfg.a; h++ {
			devs := c.DevicesOnHost(h)
			part := chunkSizes(fig3Bytes, cfg.b)
			startDeps := map[int][]netsim.OpID{}
			for i, dst := range devs {
				id, err := net.Transfer(netsim.Plain("scatter"), 0, dst, part[i], seq)
				if err != nil {
					t.Fatal(err)
				}
				startDeps[dst] = []netsim.OpID{id}
				seq++
			}
			if _, err := RingAllGather(net, "ag", devs, fig3Bytes, seq, startDeps); err != nil {
				t.Fatal(err)
			}
		}
		mk, err := net.Run()
		if err != nil {
			t.Fatal(err)
		}
		want := float64(cfg.a) * fig3T
		// Intra-host all-gather adds a vanishing amount.
		if mk < want || mk > want*1.01 {
			t.Errorf("A=%d B=%d: local all-gather makespan = %v, want ≈ %v", cfg.a, cfg.b, mk, want)
		}
	}
}

// TestGlobalAllGatherLatency pins Fig. 3c: scatter 1/(A·B) to every device,
// then one global ring all-gather: total ≈ 2t regardless of A and B.
func TestGlobalAllGatherLatency(t *testing.T) {
	for _, cfg := range []struct{ a, b int }{{2, 2}, {4, 2}, {2, 4}} {
		c := fig3Cluster(cfg.a+1, cfg.b)
		net := netsim.NewClusterNet(c)
		recvs := fig3Receivers(c)
		n := len(recvs)
		part := chunkSizes(fig3Bytes, n)
		startDeps := map[int][]netsim.OpID{}
		for i, dst := range recvs {
			id, err := net.Transfer(netsim.Plain("scatter"), 0, dst, part[i], i)
			if err != nil {
				t.Fatal(err)
			}
			startDeps[dst] = []netsim.OpID{id}
		}
		ring := RingOrder(c, recvs)
		if _, err := RingAllGather(net, "ag", ring, fig3Bytes, n, startDeps); err != nil {
			t.Fatal(err)
		}
		mk, err := net.Run()
		if err != nil {
			t.Fatal(err)
		}
		// ≈ 2t: t to scatter + (n-1)/n·t per crossing NIC, pipelined.
		if mk < 1.4*fig3T || mk > 2.6*fig3T {
			t.Errorf("A=%d B=%d: global all-gather makespan = %v, want ≈ %v", cfg.a, cfg.b, mk, 2*fig3T)
		}
	}
}

// TestBroadcastLatency pins Fig. 3d: the pipelined broadcast completes in
// t·(K + hops)/K ≈ t, independent of the number of receiver hosts.
func TestBroadcastLatency(t *testing.T) {
	for _, cfg := range []struct{ a, b int }{{1, 2}, {2, 2}, {4, 2}, {3, 4}} {
		c := fig3Cluster(cfg.a+1, cfg.b)
		net := netsim.NewClusterNet(c)
		chain := BroadcastOrder(c, 0, fig3Receivers(c))
		const k = 100
		if _, err := BroadcastChain(net, "bc", chain, fig3Bytes, k, 0); err != nil {
			t.Fatal(err)
		}
		mk, err := net.Run()
		if err != nil {
			t.Fatal(err)
		}
		upper := fig3T * (1 + float64(cfg.a)/k) * 1.05
		if mk < fig3T-1e-6 || mk > upper {
			t.Errorf("A=%d B=%d: broadcast makespan = %v, want in [t, %v]", cfg.a, cfg.b, mk, upper)
		}
	}
}

// TestBroadcastBeatsAlternatives is the §3.1 ordering claim: broadcast ≤
// global all-gather ≤ local all-gather ≤ send/recv for multi-host receivers.
func TestBroadcastBeatsAlternatives(t *testing.T) {
	const a, b = 4, 2
	run := func(build func(net *netsim.ClusterNet, c *mesh.Cluster)) float64 {
		c := fig3Cluster(a+1, b)
		net := netsim.NewClusterNet(c)
		build(net, c)
		mk, err := net.Run()
		if err != nil {
			t.Fatal(err)
		}
		return mk
	}
	tSR := run(func(net *netsim.ClusterNet, c *mesh.Cluster) {
		for i, dst := range fig3Receivers(c) {
			net.MustTransfer(netsim.Plain("sr"), 0, dst, fig3Bytes, i)
		}
	})
	tBC := run(func(net *netsim.ClusterNet, c *mesh.Cluster) {
		chain := BroadcastOrder(c, 0, fig3Receivers(c))
		if _, err := BroadcastChain(net, "bc", chain, fig3Bytes, 100, 0); err != nil {
			t.Fatal(err)
		}
	})
	if !(tBC < tSR) {
		t.Errorf("broadcast (%v) should beat send/recv (%v)", tBC, tSR)
	}
	if tSR/tBC < float64(a*b)*0.9 {
		t.Errorf("broadcast speedup = %v, want ≈ %d", tSR/tBC, a*b)
	}
}

func TestBroadcastChainValidation(t *testing.T) {
	c := fig3Cluster(2, 2)
	net := netsim.NewClusterNet(c)
	if _, err := BroadcastChain(net, "bc", []int{0}, 100, 4, 0); err == nil {
		t.Error("single-device chain should fail")
	}
	if _, err := BroadcastChain(net, "bc", []int{0, 0}, 100, 4, 0); err == nil {
		t.Error("duplicate devices should fail")
	}
	if _, err := BroadcastChain(net, "bc", []int{0, 2}, 100, 0, 0); err == nil {
		t.Error("zero chunks should fail")
	}
	if _, err := BroadcastChain(net, "bc", []int{0, 99}, 100, 4, 0); err == nil {
		t.Error("invalid device should fail")
	}
}

func TestBroadcastTinyMessage(t *testing.T) {
	// Requesting more chunks than bytes collapses to one chunk.
	c := fig3Cluster(2, 2)
	net := netsim.NewClusterNet(c)
	res, err := BroadcastChain(net, "bc", []int{0, 2, 3}, 3, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ops) != 2 {
		t.Errorf("tiny message should use 1 chunk x 2 hops, got %d ops", len(res.Ops))
	}
}

func TestBroadcastDoneAt(t *testing.T) {
	c := fig3Cluster(3, 1)
	net := netsim.NewClusterNet(c)
	res, err := BroadcastChain(net, "bc", []int{0, 1, 2}, fig3Bytes, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	net.Run()
	// Device 1 (mid-chain) finishes before device 2 (end of chain).
	if !(net.Sim.OpFinish(res.DoneAt[1]) < net.Sim.OpFinish(res.DoneAt[2])) {
		t.Error("mid-chain device should finish before the chain tail")
	}
	if len(res.AllDone()) != 2 {
		t.Errorf("AllDone = %v", res.AllDone())
	}
}

func TestRingAllGatherValidation(t *testing.T) {
	c := fig3Cluster(2, 2)
	net := netsim.NewClusterNet(c)
	if _, err := RingAllGather(net, "ag", []int{0}, 100, 0, nil); err == nil {
		t.Error("single device should fail")
	}
	if _, err := RingAllGather(net, "ag", []int{0, 0}, 100, 0, nil); err == nil {
		t.Error("duplicate devices should fail")
	}
}

func TestRingAllGatherCompletes(t *testing.T) {
	// 4 devices on one host, free links except they serialize per device:
	// every device must receive n-1 chunks.
	c, _ := mesh.NewCluster(1, 4, 100, 10, 0, 0)
	net := netsim.NewClusterNet(c)
	res, err := RingAllGather(net, "ag", []int{0, 1, 2, 3}, 400, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	mk, err := net.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Each round moves 100 B at 100 B/s = 1 s; 3 rounds pipelined = 3 s.
	if math.Abs(mk-3) > 1e-9 {
		t.Errorf("makespan = %v, want 3", mk)
	}
	if len(res.DoneAt) != 4 {
		t.Errorf("DoneAt covers %d devices", len(res.DoneAt))
	}
}

func TestRingAllReduce(t *testing.T) {
	c, _ := mesh.NewCluster(1, 4, 100, 10, 0, 0)
	net := netsim.NewClusterNet(c)
	res, err := RingAllReduce(net, "ar", []int{0, 1, 2, 3}, 400, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	mk, err := net.Run()
	if err != nil {
		t.Fatal(err)
	}
	// 2(n-1) = 6 rounds of 1 s.
	if math.Abs(mk-6) > 1e-9 {
		t.Errorf("all-reduce makespan = %v, want 6", mk)
	}
	if len(res.DoneAt) != 4 {
		t.Errorf("DoneAt covers %d devices", len(res.DoneAt))
	}
	if _, err := RingAllReduce(net, "ar", []int{0}, 100, 0, nil); err == nil {
		t.Error("single device should fail")
	}
}

func TestAllToAll(t *testing.T) {
	c, _ := mesh.NewCluster(1, 4, 100, 10, 0, 0)
	net := netsim.NewClusterNet(c)
	res, err := AllToAll(net, "a2a", []int{0, 1, 2, 3}, 100, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	mk, err := net.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Each device sends 3 messages of 1 s serially on its send link.
	if math.Abs(mk-3) > 1e-9 {
		t.Errorf("all-to-all makespan = %v, want 3", mk)
	}
	if len(res.Ops) != 12 {
		t.Errorf("ops = %d, want 12", len(res.Ops))
	}
	if len(res.DoneAt) != 4 {
		t.Errorf("DoneAt covers %d devices", len(res.DoneAt))
	}
	if _, err := AllToAll(net, "a2a", []int{0}, 100, 0, nil); err == nil {
		t.Error("single device should fail")
	}
}

func TestChunkSizes(t *testing.T) {
	s := chunkSizes(10, 3)
	if s[0]+s[1]+s[2] != 10 {
		t.Errorf("chunks must sum to total: %v", s)
	}
	for _, v := range s {
		if v < 3 || v > 4 {
			t.Errorf("chunk %d outside near-even range: %v", v, s)
		}
	}
}

func TestDefaultChunks(t *testing.T) {
	if DefaultChunks(1000) != 1 {
		t.Errorf("small message chunks = %d", DefaultChunks(1000))
	}
	if DefaultChunks(1<<30) != 128 {
		t.Errorf("1GB chunks = %d, want capped at 128", DefaultChunks(1<<30))
	}
	if got := DefaultChunks(40 << 20); got != 10 {
		t.Errorf("40MiB chunks = %d, want 10", got)
	}
}

func TestBroadcastOrder(t *testing.T) {
	c := mesh.AWSP3Cluster(3) // 4 devices per host
	// Sender on host 0, receivers spread over hosts 0, 1, 2.
	chain := BroadcastOrder(c, 1, []int{9, 4, 2, 8, 5})
	want := []int{1, 2, 4, 5, 8, 9}
	for i := range want {
		if chain[i] != want[i] {
			t.Fatalf("chain = %v, want %v", chain, want)
		}
	}
}

func TestRingOrder(t *testing.T) {
	c := mesh.AWSP3Cluster(2)
	ring := RingOrder(c, []int{5, 0, 4, 1})
	want := []int{0, 1, 4, 5}
	for i := range want {
		if ring[i] != want[i] {
			t.Fatalf("ring = %v, want %v", ring, want)
		}
	}
}
