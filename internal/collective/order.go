package collective

import (
	"sort"

	"alpacomm/internal/mesh"
)

// BroadcastOrder arranges a sender and its receivers into the chain the
// paper's broadcast strategy uses: receivers on the sender's own host come
// first (data rides NVLink), then each remaining host's receivers
// consecutively in ascending host order — so every receiving host's NIC
// receives exactly one copy of the message.
func BroadcastOrder(c mesh.Topology, sender int, receivers []int) []int {
	byHost := map[int][]int{}
	for _, d := range receivers {
		h := c.HostOf(d)
		byHost[h] = append(byHost[h], d)
	}
	var hosts []int
	for h := range byHost {
		hosts = append(hosts, h)
	}
	sort.Ints(hosts)
	senderHost := c.HostOf(sender)
	// Sender's host first, then the rest in ascending order.
	ordered := make([]int, 0, len(hosts))
	for _, h := range hosts {
		if h == senderHost {
			ordered = append(ordered, h)
		}
	}
	for _, h := range hosts {
		if h != senderHost {
			ordered = append(ordered, h)
		}
	}
	chain := []int{sender}
	for _, h := range ordered {
		devs := byHost[h]
		sort.Ints(devs)
		chain = append(chain, devs...)
	}
	return chain
}

// RingOrder arranges devices into a ring that crosses host boundaries as
// few times as possible: devices grouped by host, hosts ascending. This is
// the standard NCCL ring layout for hierarchical clusters.
func RingOrder(c mesh.Topology, devices []int) []int {
	byHost := map[int][]int{}
	for _, d := range devices {
		h := c.HostOf(d)
		byHost[h] = append(byHost[h], d)
	}
	var hosts []int
	for h := range byHost {
		hosts = append(hosts, h)
	}
	sort.Ints(hosts)
	out := make([]int, 0, len(devices))
	for _, h := range hosts {
		devs := byHost[h]
		sort.Ints(devs)
		out = append(out, devs...)
	}
	return out
}
