package pipeline

import (
	"fmt"

	"alpacomm/internal/netsim"
)

// Config describes one pipeline-parallel training iteration.
type Config struct {
	// Stages is the number of pipeline stages.
	Stages int
	// MicroBatches per iteration.
	MicroBatches int
	// Schedule kind.
	Schedule Kind
	// FwdTime[s] is stage s's forward compute time for one micro-batch.
	FwdTime []float64
	// BwdTime[s] is stage s's full backward compute time.
	BwdTime []float64
	// FwdCommTime[s] is the cross-mesh resharding time for the activation
	// sent from stage s to s+1 (len Stages-1; nil means no cost).
	FwdCommTime []float64
	// BwdCommTime[s] is the gradient resharding time from stage s+1 back
	// to s (len Stages-1; nil means same as FwdCommTime).
	BwdCommTime []float64
	// Overlap routes communication over dedicated channel resources so it
	// can hide behind other compute; without it, communication blocks the
	// sending stage inline (Fig. 4a's behaviour).
	Overlap bool
	// SplitBackward enables backward weight delaying (§4): backwards are
	// split into Bd (activation gradients, fraction BdFraction of BwdTime)
	// and Bw; backward communication depends only on Bd.
	SplitBackward bool
	// BdFraction is Bd's share of BwdTime (default 0.5).
	BdFraction float64
}

// Result reports one simulated iteration.
type Result struct {
	// Makespan is the iteration time.
	Makespan float64
	// PeakActivations[s] is the maximum number of micro-batches whose
	// activations stage s holds simultaneously (§4's memory cost).
	PeakActivations []int
	// StageBusy[s] is the fraction of the makespan stage s spent
	// computing.
	StageBusy []float64
	// Events is the full task trace for timeline rendering.
	Events []netsim.Event
	// Orders are the static per-stage schedules that were executed.
	Orders [][]StageTask
}

func (c *Config) validate() error {
	if c.Stages < 1 || c.MicroBatches < 1 {
		return fmt.Errorf("pipeline: invalid config: %d stages, %d micro-batches", c.Stages, c.MicroBatches)
	}
	if len(c.FwdTime) != c.Stages || len(c.BwdTime) != c.Stages {
		return fmt.Errorf("pipeline: FwdTime/BwdTime must have one entry per stage")
	}
	if c.FwdCommTime != nil && len(c.FwdCommTime) != c.Stages-1 {
		return fmt.Errorf("pipeline: FwdCommTime must have %d entries", c.Stages-1)
	}
	if c.BwdCommTime != nil && len(c.BwdCommTime) != c.Stages-1 {
		return fmt.Errorf("pipeline: BwdCommTime must have %d entries", c.Stages-1)
	}
	for s := 0; s < c.Stages; s++ {
		if c.FwdTime[s] < 0 || c.BwdTime[s] < 0 {
			return fmt.Errorf("pipeline: negative compute time at stage %d", s)
		}
	}
	return nil
}

// Simulate times one training iteration under the configured schedule.
func Simulate(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.BdFraction == 0 {
		cfg.BdFraction = 0.5
	}
	fwdComm := cfg.FwdCommTime
	if fwdComm == nil {
		fwdComm = make([]float64, cfg.Stages-1)
	}
	bwdComm := cfg.BwdCommTime
	if bwdComm == nil {
		bwdComm = fwdComm
	}
	orders, err := BuildSchedule(cfg.Schedule, cfg.Stages, cfg.MicroBatches, cfg.SplitBackward)
	if err != nil {
		return nil, err
	}

	sim := netsim.NewSim()
	stageRes := make([]netsim.ResourceID, cfg.Stages)
	for s := range stageRes {
		stageRes[s] = sim.MustResource(fmt.Sprintf("stage%d", s))
	}
	chanRes := func(s int, dir string) netsim.ResourceID {
		return sim.MustResource(fmt.Sprintf("ch%d:%s", s, dir))
	}

	type key struct {
		kind TaskKind
		s, m int
	}
	computeOp := map[key]netsim.OpID{}    // compute tasks
	fwdCommOp := map[[2]int]netsim.OpID{} // boundary s -> s+1, micro-batch m
	bwdCommOp := map[[2]int]netsim.OpID{} // boundary s+1 -> s, micro-batch m

	// Two passes: forward communication ops are created when the producing
	// F is registered; backward similarly. Because stage orders interleave,
	// we iterate per stage in order and resolve cross-stage dependencies
	// lazily — a task may need a comm op whose producer lives on another
	// stage and appears "later" in our outer loop. To keep registration in
	// dependency order (AddOp requires existing deps), we emit tasks in
	// rounds: repeatedly scan all stages and emit the next task of a stage
	// if its dependencies' ops already exist.
	cursor := make([]int, cfg.Stages)
	prevOnStage := make([]netsim.OpID, cfg.Stages)
	hasPrev := make([]bool, cfg.Stages)
	emitted := 0
	total := 0
	for _, o := range orders {
		total += len(o)
	}
	seq := 0
	for emitted < total {
		progress := false
		for s := 0; s < cfg.Stages; s++ {
			for cursor[s] < len(orders[s]) {
				t := orders[s][cursor[s]]
				var deps []netsim.OpID
				ready := true
				switch t.Kind {
				case F:
					if s > 0 {
						id, ok := fwdCommOp[[2]int{s - 1, t.MicroBatch}]
						if !ok {
							ready = false
							break
						}
						deps = append(deps, id)
					}
				case B, Bd:
					// Needs this stage's forward of the same micro-batch
					// (activations) and, unless last stage, the gradient
					// from downstream.
					fid, ok := computeOp[key{F, s, t.MicroBatch}]
					if !ok {
						ready = false
						break
					}
					deps = append(deps, fid)
					if s < cfg.Stages-1 {
						id, ok := bwdCommOp[[2]int{s, t.MicroBatch}]
						if !ok {
							ready = false
							break
						}
						deps = append(deps, id)
					}
				case Bw:
					id, ok := computeOp[key{Bd, s, t.MicroBatch}]
					if !ok {
						ready = false
						break
					}
					deps = append(deps, id)
				}
				if !ready {
					break
				}
				// Static order: chain to the previous task on this stage.
				if hasPrev[s] {
					deps = append(deps, prevOnStage[s])
				}
				dur := taskDuration(&cfg, t, s)
				lbl := netsim.Label{Prefix: t.Kind.String(), Kind: netsim.LabelStageTask, A: int32(s), B: int32(t.MicroBatch)}
				id, err := sim.AddOp(lbl, dur, seq, stageRes[s:s+1], deps...)
				if err != nil {
					return nil, err
				}
				seq++
				computeOp[key{t.Kind, s, t.MicroBatch}] = id
				prevOnStage[s] = id
				hasPrev[s] = true
				cursor[s]++
				emitted++
				progress = true

				// Emit the communication op this task produces.
				switch t.Kind {
				case F:
					if s < cfg.Stages-1 {
						cid, err := addComm(sim, &cfg, chanRes, stageRes, "fwd", s, t.MicroBatch, fwdComm[s], id, &prevOnStage[s], &seq)
						if err != nil {
							return nil, err
						}
						fwdCommOp[[2]int{s, t.MicroBatch}] = cid
					}
				case B, Bd:
					if s > 0 {
						cid, err := addComm(sim, &cfg, chanRes, stageRes, "bwd", s-1, t.MicroBatch, bwdComm[s-1], id, &prevOnStage[s], &seq)
						if err != nil {
							return nil, err
						}
						bwdCommOp[[2]int{s - 1, t.MicroBatch}] = cid
					}
				}
			}
		}
		if !progress {
			return nil, fmt.Errorf("pipeline: schedule deadlock — emitted %d of %d tasks", emitted, total)
		}
	}

	makespan, err := sim.Run()
	if err != nil {
		return nil, err
	}
	res := &Result{
		Makespan:        makespan,
		PeakActivations: peakActivations(orders),
		StageBusy:       make([]float64, cfg.Stages),
		Events:          sim.Events(),
		Orders:          orders,
	}
	util := sim.Utilization()
	for s := 0; s < cfg.Stages; s++ {
		res.StageBusy[s] = util[fmt.Sprintf("stage%d", s)]
	}
	return res, nil
}

// addComm registers one cross-mesh communication op. With overlap it rides
// a dedicated channel; without, it is chained into the sending stage's
// static order (blocking the stage inline, Fig. 4a).
func addComm(sim *netsim.Sim, cfg *Config, chanRes func(int, string) netsim.ResourceID, stageRes []netsim.ResourceID, dir string, boundary, mb int, dur float64, producer netsim.OpID, prevOnStage *netsim.OpID, seq *int) (netsim.OpID, error) {
	label := netsim.Label{Prefix: dir, Kind: netsim.LabelComm, A: int32(boundary), B: int32(mb)}
	ch := [1]netsim.ResourceID{chanRes(boundary, dir)}
	if cfg.Overlap {
		id, err := sim.AddOp(label, dur, *seq, ch[:], producer)
		(*seq)++
		return id, err
	}
	// Inline: occupy the channel and chain into the sender stage's order.
	id, err := sim.AddOp(label, dur, *seq, ch[:], producer, *prevOnStage)
	if err != nil {
		return 0, err
	}
	(*seq)++
	*prevOnStage = id
	return id, nil
}

func taskDuration(cfg *Config, t StageTask, s int) float64 {
	switch t.Kind {
	case F:
		return cfg.FwdTime[s]
	case B:
		return cfg.BwdTime[s]
	case Bd:
		return cfg.BwdTime[s] * cfg.BdFraction
	case Bw:
		return cfg.BwdTime[s] * (1 - cfg.BdFraction)
	default:
		return 0
	}
}

// peakActivations computes, per stage, the maximum number of in-flight
// micro-batch activations implied by the static order: +1 at each forward,
// released when the backward that consumes them completes (Bw when split).
func peakActivations(orders [][]StageTask) []int {
	out := make([]int, len(orders))
	for s, order := range orders {
		cur, peak := 0, 0
		for _, t := range order {
			switch t.Kind {
			case F:
				cur++
				if cur > peak {
					peak = cur
				}
			case B, Bw:
				cur--
			}
		}
		out[s] = peak
	}
	return out
}
