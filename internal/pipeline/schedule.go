// Package pipeline implements the paper's §4: synchronous pipeline
// schedules (GPipe, 1F1B, and the proposed eager-1F1B), optional
// communication overlap, backward weight delaying, and a simulator that
// times a schedule over per-stage compute costs and per-boundary
// cross-mesh communication costs.
package pipeline

import (
	"fmt"
)

// Kind selects a pipeline schedule.
type Kind int

const (
	// GPipe runs all forwards then all backwards per stage.
	GPipe Kind = iota
	// OneFOneB is the 1F1B schedule of Narayanan et al. (Fig. 4a): stage i
	// (1-indexed) runs (#stages - i + 1) warm-up forwards, then alternates
	// one forward and one backward.
	OneFOneB
	// Eager1F1B is the paper's overlapping-friendly schedule (Fig. 4b):
	// stage i runs (2·(#stages - i) + 1) warm-up forwards, creating slack
	// between dependent tasks that hides cross-mesh communication.
	Eager1F1B
)

func (k Kind) String() string {
	switch k {
	case GPipe:
		return "gpipe"
	case OneFOneB:
		return "1f1b"
	case Eager1F1B:
		return "eager-1f1b"
	default:
		return fmt.Sprintf("schedule(%d)", int(k))
	}
}

// TaskKind labels one compute task in a stage's static order.
type TaskKind int

const (
	// F is a forward pass of one micro-batch.
	F TaskKind = iota
	// B is a full backward pass.
	B
	// Bd computes gradients of activations only (the part cross-mesh
	// communication depends on).
	Bd
	// Bw computes gradients of weights (delayable, §4's backward weight
	// delaying).
	Bw
)

func (k TaskKind) String() string {
	switch k {
	case F:
		return "F"
	case B:
		return "B"
	case Bd:
		return "Bd"
	case Bw:
		return "Bw"
	default:
		return "?"
	}
}

// StageTask is one entry of a stage's static execution order.
type StageTask struct {
	Kind       TaskKind
	MicroBatch int
}

// WarmupForwards returns the number of warm-up forward passes stage s
// (0-indexed) runs before its first backward, clamped to the micro-batch
// count.
func WarmupForwards(kind Kind, stages, microBatches, s int) int {
	var w int
	switch kind {
	case GPipe:
		w = microBatches
	case OneFOneB:
		w = stages - s
	case Eager1F1B:
		w = 2*(stages-s-1) + 1
	default:
		w = microBatches
	}
	if w > microBatches {
		w = microBatches
	}
	if w < 1 {
		w = 1
	}
	return w
}

// BuildSchedule produces the static per-stage task orders for the given
// schedule. With splitBackward, every backward is emitted as Bd followed by
// Bw, enabling backward weight delaying: cross-mesh communication depends
// only on Bd, so it overlaps with the Bw compute.
func BuildSchedule(kind Kind, stages, microBatches int, splitBackward bool) ([][]StageTask, error) {
	if stages < 1 {
		return nil, fmt.Errorf("pipeline: need at least one stage, got %d", stages)
	}
	if microBatches < 1 {
		return nil, fmt.Errorf("pipeline: need at least one micro-batch, got %d", microBatches)
	}
	emitB := func(order []StageTask, m int) []StageTask {
		if splitBackward {
			return append(order, StageTask{Bd, m}, StageTask{Bw, m})
		}
		return append(order, StageTask{B, m})
	}
	out := make([][]StageTask, stages)
	for s := 0; s < stages; s++ {
		w := WarmupForwards(kind, stages, microBatches, s)
		var order []StageTask
		for m := 0; m < w; m++ {
			order = append(order, StageTask{F, m})
		}
		// Steady phase: one backward, one forward.
		for m := 0; w+m < microBatches; m++ {
			order = emitB(order, m)
			order = append(order, StageTask{F, w + m})
		}
		// Drain remaining backwards.
		for m := microBatches - w; m < microBatches; m++ {
			order = emitB(order, m)
		}
		out[s] = order
	}
	return out, nil
}
