package pipeline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func uniform(stages int, v float64) []float64 {
	out := make([]float64, stages)
	for i := range out {
		out[i] = v
	}
	return out
}

func baseConfig(kind Kind, stages, mb int, comm float64) Config {
	return Config{
		Stages:       stages,
		MicroBatches: mb,
		Schedule:     kind,
		FwdTime:      uniform(stages, 1),
		BwdTime:      uniform(stages, 2),
		FwdCommTime:  uniform(stages-1, comm),
	}
}

func TestBuildScheduleCounts(t *testing.T) {
	for _, kind := range []Kind{GPipe, OneFOneB, Eager1F1B} {
		orders, err := BuildSchedule(kind, 4, 8, false)
		if err != nil {
			t.Fatal(err)
		}
		for s, order := range orders {
			nf, nb := 0, 0
			for _, task := range order {
				switch task.Kind {
				case F:
					nf++
				case B:
					nb++
				}
			}
			if nf != 8 || nb != 8 {
				t.Errorf("%v stage %d: %d F, %d B; want 8 each", kind, s, nf, nb)
			}
		}
	}
}

func TestBuildScheduleSplitBackward(t *testing.T) {
	orders, err := BuildSchedule(OneFOneB, 2, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	for s, order := range orders {
		nbd, nbw := 0, 0
		lastBd := -1
		for i, task := range order {
			switch task.Kind {
			case Bd:
				nbd++
				lastBd = i
			case Bw:
				nbw++
				if i != lastBd+1 {
					t.Errorf("stage %d: Bw not immediately after Bd at %d", s, i)
				}
			case B:
				t.Errorf("stage %d: unsplit B present", s)
			}
		}
		if nbd != 4 || nbw != 4 {
			t.Errorf("stage %d: %d Bd, %d Bw", s, nbd, nbw)
		}
	}
}

func TestBuildScheduleValidation(t *testing.T) {
	if _, err := BuildSchedule(OneFOneB, 0, 4, false); err == nil {
		t.Error("zero stages should fail")
	}
	if _, err := BuildSchedule(OneFOneB, 2, 0, false); err == nil {
		t.Error("zero micro-batches should fail")
	}
}

// TestWarmupDepths pins the paper's warm-up formulas: 1F1B stage i runs
// (#stages - i + 1) forwards (1-indexed); eager-1F1B runs
// (2(#stages - i) + 1).
func TestWarmupDepths(t *testing.T) {
	const stages, mb = 4, 16
	for s := 0; s < stages; s++ {
		if w := WarmupForwards(OneFOneB, stages, mb, s); w != stages-s {
			t.Errorf("1f1b warmup stage %d = %d, want %d", s, w, stages-s)
		}
		if w := WarmupForwards(Eager1F1B, stages, mb, s); w != 2*(stages-s-1)+1 {
			t.Errorf("eager warmup stage %d = %d, want %d", s, w, 2*(stages-s-1)+1)
		}
	}
	// Last stage always warms up exactly one forward.
	if WarmupForwards(Eager1F1B, stages, mb, stages-1) != 1 {
		t.Error("last stage eager warmup must be 1")
	}
	// Clamped by micro-batch count.
	if w := WarmupForwards(Eager1F1B, 8, 3, 0); w != 3 {
		t.Errorf("clamped warmup = %d, want 3", w)
	}
}

// TestZeroCommSchedulesMatch pins §4's claim: with no communication cost,
// 1F1B and eager-1F1B have identical latency.
func TestZeroCommSchedulesMatch(t *testing.T) {
	a, err := Simulate(baseConfig(OneFOneB, 4, 16, 0))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(baseConfig(Eager1F1B, 4, 16, 0))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Makespan-b.Makespan) > 1e-9 {
		t.Errorf("1f1b = %v, eager = %v; must match with zero comm", a.Makespan, b.Makespan)
	}
}

// TestPerfectPipelineMakespan: with zero comm, the 1F1B makespan is the
// classic (M + S - 1) fwd+bwd slots for uniform stages.
func TestPerfectPipelineMakespan(t *testing.T) {
	res, err := Simulate(baseConfig(OneFOneB, 2, 4, 0))
	if err != nil {
		t.Fatal(err)
	}
	// Uniform F=1, B=2: iteration = (M + S - 1) * (F + B) = 5 * 3 = 15.
	if math.Abs(res.Makespan-15) > 1e-9 {
		t.Errorf("makespan = %v, want 15", res.Makespan)
	}
}

// TestEagerHidesCommunication is the paper's headline §4 claim: with
// non-negligible comm and overlap enabled, eager-1F1B beats 1F1B, and
// overlapped 1F1B beats blocking 1F1B.
func TestEagerHidesCommunication(t *testing.T) {
	const comm = 1.0
	blocking := baseConfig(OneFOneB, 4, 16, comm)
	r0, err := Simulate(blocking)
	if err != nil {
		t.Fatal(err)
	}
	overlapped := blocking
	overlapped.Overlap = true
	r1, err := Simulate(overlapped)
	if err != nil {
		t.Fatal(err)
	}
	eager := overlapped
	eager.Schedule = Eager1F1B
	r2, err := Simulate(eager)
	if err != nil {
		t.Fatal(err)
	}
	signal := baseConfig(OneFOneB, 4, 16, 0)
	r3, err := Simulate(signal)
	if err != nil {
		t.Fatal(err)
	}
	if !(r1.Makespan < r0.Makespan) {
		t.Errorf("overlap (%v) must beat blocking (%v)", r1.Makespan, r0.Makespan)
	}
	if !(r2.Makespan < r1.Makespan) {
		t.Errorf("eager (%v) must beat plain overlap (%v)", r2.Makespan, r1.Makespan)
	}
	if r2.Makespan < r3.Makespan {
		t.Errorf("eager (%v) cannot beat the zero-comm bound (%v)", r2.Makespan, r3.Makespan)
	}
	// Eager should recover most of the gap to the signal bound.
	gap0 := r0.Makespan - r3.Makespan
	gap2 := r2.Makespan - r3.Makespan
	if gap2 > 0.5*gap0 {
		t.Errorf("eager recovers too little: blocking gap %v, eager gap %v", gap0, gap2)
	}
}

// TestBackwardWeightDelayingHelps: splitting the backward lets the gradient
// comm start after Bd and overlap with Bw.
func TestBackwardWeightDelayingHelps(t *testing.T) {
	cfg := baseConfig(OneFOneB, 4, 12, 1.0)
	cfg.Overlap = true
	whole, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.SplitBackward = true
	split, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if split.Makespan > whole.Makespan+1e-9 {
		t.Errorf("split backward (%v) should not be slower than whole (%v)", split.Makespan, whole.Makespan)
	}
}

// TestPeakActivations pins the §4 memory claim: eager-1F1B stores at most
// (2(#stages - i) + 1) activations — bounded, and GPipe stores all M.
func TestPeakActivations(t *testing.T) {
	r1, _ := Simulate(baseConfig(OneFOneB, 4, 16, 0))
	r2, _ := Simulate(baseConfig(Eager1F1B, 4, 16, 0))
	rg, _ := Simulate(baseConfig(GPipe, 4, 16, 0))
	for s := 0; s < 4; s++ {
		if r1.PeakActivations[s] != 4-s {
			t.Errorf("1f1b peak[%d] = %d, want %d", s, r1.PeakActivations[s], 4-s)
		}
		if r2.PeakActivations[s] != 2*(4-s-1)+1 {
			t.Errorf("eager peak[%d] = %d, want %d", s, r2.PeakActivations[s], 2*(4-s-1)+1)
		}
		if rg.PeakActivations[s] != 16 {
			t.Errorf("gpipe peak[%d] = %d, want 16", s, rg.PeakActivations[s])
		}
		// The paper's bound: eager adds at most #stages activations.
		if r2.PeakActivations[s]-r1.PeakActivations[s] > 4 {
			t.Errorf("eager memory increase at stage %d exceeds #stages", s)
		}
	}
}

func TestGPipeSlowerThan1F1BWithComm(t *testing.T) {
	// Same compute; GPipe is never faster for these uniform settings.
	g, _ := Simulate(baseConfig(GPipe, 4, 16, 0.5))
	o, _ := Simulate(baseConfig(OneFOneB, 4, 16, 0.5))
	if o.Makespan > g.Makespan+1e-9 {
		t.Errorf("1f1b (%v) should be <= gpipe (%v)", o.Makespan, g.Makespan)
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(Config{Stages: 0, MicroBatches: 1}); err == nil {
		t.Error("zero stages should fail")
	}
	cfg := baseConfig(OneFOneB, 2, 2, 0)
	cfg.FwdTime = []float64{1}
	if _, err := Simulate(cfg); err == nil {
		t.Error("wrong FwdTime length should fail")
	}
	cfg = baseConfig(OneFOneB, 2, 2, 0)
	cfg.FwdCommTime = []float64{0, 0}
	if _, err := Simulate(cfg); err == nil {
		t.Error("wrong FwdCommTime length should fail")
	}
	cfg = baseConfig(OneFOneB, 2, 2, 0)
	cfg.BwdTime = []float64{-1, 1}
	if _, err := Simulate(cfg); err == nil {
		t.Error("negative time should fail")
	}
	cfg = baseConfig(OneFOneB, 2, 2, 0)
	cfg.BwdCommTime = []float64{0, 0}
	if _, err := Simulate(cfg); err == nil {
		t.Error("wrong BwdCommTime length should fail")
	}
}

func TestSingleStage(t *testing.T) {
	cfg := Config{
		Stages: 1, MicroBatches: 4, Schedule: OneFOneB,
		FwdTime: []float64{1}, BwdTime: []float64{2},
	}
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-12) > 1e-9 {
		t.Errorf("single stage makespan = %v, want 12", res.Makespan)
	}
}

func TestKindStrings(t *testing.T) {
	for _, k := range []Kind{GPipe, OneFOneB, Eager1F1B, Kind(9)} {
		if k.String() == "" {
			t.Error("empty kind name")
		}
	}
	for _, k := range []TaskKind{F, B, Bd, Bw, TaskKind(9)} {
		if k.String() == "" {
			t.Error("empty task kind name")
		}
	}
}

// Property: every schedule/overlap/split combination simulates without
// deadlock, the makespan is at least the critical path of one micro-batch,
// and at least total per-stage compute.
func TestSimulateInvariants(t *testing.T) {
	kinds := []Kind{GPipe, OneFOneB, Eager1F1B}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		stages := 1 + r.Intn(6)
		mb := 1 + r.Intn(24)
		cfg := Config{
			Stages:        stages,
			MicroBatches:  mb,
			Schedule:      kinds[r.Intn(len(kinds))],
			FwdTime:       make([]float64, stages),
			BwdTime:       make([]float64, stages),
			Overlap:       r.Intn(2) == 0,
			SplitBackward: r.Intn(2) == 0,
		}
		comm := make([]float64, stages-1)
		for s := 0; s < stages; s++ {
			cfg.FwdTime[s] = 0.5 + r.Float64()
			cfg.BwdTime[s] = 0.5 + 2*r.Float64()
		}
		for s := range comm {
			comm[s] = r.Float64()
		}
		if stages > 1 {
			cfg.FwdCommTime = comm
		}
		res, err := Simulate(cfg)
		if err != nil {
			return false
		}
		// Critical path of one micro-batch: forwards down the pipe, then
		// backwards up. With backward weight delaying only Bd gates the
		// upstream stage; the final Bw of stage 0 still runs at the end.
		var critical, maxStage float64
		for s := 0; s < stages; s++ {
			critical += cfg.FwdTime[s]
			if cfg.SplitBackward {
				critical += cfg.BwdTime[s] / 2
			} else {
				critical += cfg.BwdTime[s]
			}
			load := float64(mb) * (cfg.FwdTime[s] + cfg.BwdTime[s])
			if load > maxStage {
				maxStage = load
			}
		}
		if cfg.SplitBackward {
			critical += cfg.BwdTime[0] / 2
		}
		return res.Makespan >= critical-1e-9 && res.Makespan >= maxStage-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestFig4Shape: reconstruct the 2-stage, 7-micro-batch setting of Fig. 4
// and verify eager-1F1B's warm-up is deeper on stage 0 (3 vs 2).
func TestFig4Shape(t *testing.T) {
	o1, _ := BuildSchedule(OneFOneB, 2, 7, false)
	oe, _ := BuildSchedule(Eager1F1B, 2, 7, false)
	countLeadingF := func(order []StageTask) int {
		n := 0
		for _, t := range order {
			if t.Kind != F {
				break
			}
			n++
		}
		return n
	}
	if countLeadingF(o1[0]) != 2 || countLeadingF(o1[1]) != 1 {
		t.Errorf("1f1b warmups = %d,%d want 2,1", countLeadingF(o1[0]), countLeadingF(o1[1]))
	}
	if countLeadingF(oe[0]) != 3 || countLeadingF(oe[1]) != 1 {
		t.Errorf("eager warmups = %d,%d want 3,1", countLeadingF(oe[0]), countLeadingF(oe[1]))
	}
}
