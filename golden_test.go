// Golden determinism fixtures: plans, makespans and Event timelines on the
// three topology presets (p3, dgx-a100, mixed), captured before the
// allocation-free netsim refactor and asserted byte-identical after it.
// Regenerate with: go test -run TestGolden -update .
package alpacomm_test

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	alpacomm "alpacomm"
	"alpacomm/internal/netsim"
)

var updateGolden = flag.Bool("update", false, "rewrite golden fixtures")

// goldenEvent mirrors netsim.Event with exact float64 round-tripping.
type goldenEvent struct {
	Label     string   `json:"label"`
	Start     float64  `json:"start"`
	Finish    float64  `json:"finish"`
	Resources []string `json:"resources"`
}

// goldenReshard records one (preset, strategy) resharding outcome.
type goldenReshard struct {
	Preset   string        `json:"preset"`
	Strategy string        `json:"strategy"`
	SenderOf map[int]int   `json:"sender_of"`
	Order    []int         `json:"order"`
	Makespan float64       `json:"makespan"`
	EffGbps  float64       `json:"eff_gbps"`
	NumOps   int           `json:"num_ops"`
	Events   []goldenEvent `json:"events"`
}

// goldenPipeline records one pipeline-schedule simulation.
type goldenPipeline struct {
	Name            string        `json:"name"`
	Makespan        float64       `json:"makespan"`
	PeakActivations []int         `json:"peak_activations"`
	Events          []goldenEvent `json:"events"`
}

type goldenFile struct {
	Reshards  []goldenReshard  `json:"reshards"`
	Pipelines []goldenPipeline `json:"pipelines"`
}

func toGoldenEvents(evs []netsim.Event) []goldenEvent {
	out := make([]goldenEvent, len(evs))
	for i, e := range evs {
		out[i] = goldenEvent{Label: e.Label, Start: e.Start, Finish: e.Finish, Resources: e.Resources}
	}
	return out
}

// goldenPresets are the three topology presets of the registry. Meshes are
// (2,4) source at device 0 and (2,4) destination at device 8 — on p3 that
// spans hosts 0-1 vs 2-3, on dgx-a100 it is host 0 vs host 1, and on mixed
// it is the two p3 hosts vs the first DGX host.
func goldenPresets() []struct {
	Name string
	Topo alpacomm.Topology
} {
	return []struct {
		Name string
		Topo alpacomm.Topology
	}{
		{"p3", alpacomm.AWSP3Cluster(4)},
		{"dgx-a100", alpacomm.DGXA100Cluster(2)},
		{"mixed", alpacomm.MixedP3DGXCluster(2, 2, 2)},
	}
}

func goldenStrategies() []struct {
	Name string
	Opts alpacomm.ReshardOptions
} {
	// DFSNodes makes the ensemble search a pure function of its inputs, so
	// the fixtures are machine-independent.
	return []struct {
		Name string
		Opts alpacomm.ReshardOptions
	}{
		{"send/recv", alpacomm.ReshardOptions{Strategy: alpacomm.StrategySendRecv, Scheduler: alpacomm.SchedulerGreedyLoad}},
		{"broadcast", alpacomm.ReshardOptions{Strategy: alpacomm.StrategyBroadcast, Scheduler: alpacomm.SchedulerEnsemble, Seed: 1, DFSNodes: 20000, Chunks: 8}},
		{"alpa", alpacomm.ReshardOptions{Strategy: alpacomm.StrategyAlpa, Scheduler: alpacomm.SchedulerGreedyLoad}},
	}
}

func buildGolden(t *testing.T) goldenFile {
	t.Helper()
	var g goldenFile
	shape, err := alpacomm.NewShape(128, 128, 8)
	if err != nil {
		t.Fatal(err)
	}
	srcSpec, _ := alpacomm.ParseSpec("RS01R")
	dstSpec, _ := alpacomm.ParseSpec("S01RR")
	for _, p := range goldenPresets() {
		src, err := p.Topo.Slice([]int{2, 4}, 0)
		if err != nil {
			t.Fatalf("%s: src mesh: %v", p.Name, err)
		}
		dst, err := p.Topo.Slice([]int{2, 4}, 8)
		if err != nil {
			t.Fatalf("%s: dst mesh: %v", p.Name, err)
		}
		task, err := alpacomm.NewReshardTask(shape, alpacomm.Float32, src, srcSpec, dst, dstSpec)
		if err != nil {
			t.Fatalf("%s: task: %v", p.Name, err)
		}
		for _, s := range goldenStrategies() {
			plan, err := alpacomm.PlanReshard(task, s.Opts)
			if err != nil {
				t.Fatalf("%s/%s: plan: %v", p.Name, s.Name, err)
			}
			sim, err := plan.Simulate()
			if err != nil {
				t.Fatalf("%s/%s: simulate: %v", p.Name, s.Name, err)
			}
			g.Reshards = append(g.Reshards, goldenReshard{
				Preset:   p.Name,
				Strategy: s.Name,
				SenderOf: plan.SenderOf,
				Order:    plan.Order,
				Makespan: sim.Makespan,
				EffGbps:  sim.EffectiveGbps,
				NumOps:   sim.NumOps,
				Events:   toGoldenEvents(sim.Events),
			})
		}
	}
	for _, pc := range []struct {
		Name string
		Cfg  alpacomm.PipelineConfig
	}{
		{"1f1b-inline", alpacomm.PipelineConfig{
			Stages: 4, MicroBatches: 8, Schedule: alpacomm.Schedule1F1B,
			FwdTime: []float64{1, 1.25, 1, 0.75}, BwdTime: []float64{2, 2.5, 2, 1.5},
			FwdCommTime: []float64{0.5, 0.25, 0.5},
		}},
		{"eager-overlap-split", alpacomm.PipelineConfig{
			Stages: 4, MicroBatches: 8, Schedule: alpacomm.ScheduleEager1F1B,
			FwdTime: []float64{1, 1.25, 1, 0.75}, BwdTime: []float64{2, 2.5, 2, 1.5},
			FwdCommTime: []float64{0.5, 0.25, 0.5}, BwdCommTime: []float64{0.25, 0.5, 0.25},
			Overlap: true, SplitBackward: true, BdFraction: 0.4,
		}},
	} {
		res, err := alpacomm.SimulatePipeline(pc.Cfg)
		if err != nil {
			t.Fatalf("pipeline %s: %v", pc.Name, err)
		}
		g.Pipelines = append(g.Pipelines, goldenPipeline{
			Name:            pc.Name,
			Makespan:        res.Makespan,
			PeakActivations: res.PeakActivations,
			Events:          toGoldenEvents(res.Events),
		})
	}
	return g
}

// TestGoldenDeterminism asserts that plans (sender assignment + order),
// makespans and full Event timelines on all three presets are identical to
// the committed fixtures — the refactor-safety net for the netsim core.
func TestGoldenDeterminism(t *testing.T) {
	got := buildGolden(t)
	path := filepath.Join("testdata", "golden_netsim.json")
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "\t")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden fixtures rewritten: %s", path)
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixtures (run with -update): %v", err)
	}
	var want goldenFile
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(got.Reshards) != len(want.Reshards) {
		t.Fatalf("reshard fixture count: got %d want %d", len(got.Reshards), len(want.Reshards))
	}
	for i, w := range want.Reshards {
		g := got.Reshards[i]
		if g.Preset != w.Preset || g.Strategy != w.Strategy {
			t.Fatalf("fixture %d identity: got %s/%s want %s/%s", i, g.Preset, g.Strategy, w.Preset, w.Strategy)
		}
		if g.Makespan != w.Makespan || g.EffGbps != w.EffGbps || g.NumOps != w.NumOps {
			t.Errorf("%s/%s: makespan/gbps/ops = %v/%v/%d, want %v/%v/%d",
				g.Preset, g.Strategy, g.Makespan, g.EffGbps, g.NumOps, w.Makespan, w.EffGbps, w.NumOps)
		}
		if !reflect.DeepEqual(g.SenderOf, w.SenderOf) || !reflect.DeepEqual(g.Order, w.Order) {
			t.Errorf("%s/%s: plan differs from fixture", g.Preset, g.Strategy)
		}
		assertEventsEqual(t, g.Preset+"/"+g.Strategy, g.Events, w.Events)
	}
	if len(got.Pipelines) != len(want.Pipelines) {
		t.Fatalf("pipeline fixture count: got %d want %d", len(got.Pipelines), len(want.Pipelines))
	}
	for i, w := range want.Pipelines {
		g := got.Pipelines[i]
		if g.Makespan != w.Makespan || !reflect.DeepEqual(g.PeakActivations, w.PeakActivations) {
			t.Errorf("pipeline %s: makespan %v peak %v, want %v %v", g.Name, g.Makespan, g.PeakActivations, w.Makespan, w.PeakActivations)
		}
		assertEventsEqual(t, "pipeline/"+g.Name, g.Events, w.Events)
	}
}

func assertEventsEqual(t *testing.T, name string, got, want []goldenEvent) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: %d events, want %d", name, len(got), len(want))
		return
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("%s: event %d = %+v, want %+v", name, i, got[i], want[i])
			return
		}
	}
}
