// Benchmarks regenerating every table and figure of the paper's evaluation
// (§5). Each benchmark runs the corresponding harness and reports the
// headline quantity as a custom metric:
//
//   - BenchmarkFig5a / BenchmarkFig5b: effective bandwidth (Gbps) of
//     Send/Recv, Alpa and Ours at the largest receiver count;
//   - BenchmarkFig6 / BenchmarkFig8: mean effective bandwidth per method
//     over the nine Table 2 cases;
//   - BenchmarkFig7GPT / BenchmarkFig7UTrans: aggregated training TFLOPS
//     per method (Table 3 cases);
//   - BenchmarkFig9: TFLOPS per overlap variant at 32 micro-batches;
//   - BenchmarkTable1Memory: Table 1 evaluation cost.
//
// Run with: go test -bench=. -benchmem
package alpacomm_test

import (
	"strings"
	"testing"

	alpacomm "alpacomm"
	"alpacomm/internal/harness"
)

// microMetric reports per-method mean effective bandwidth for rows
// matching caseFilter ("" = all).
func microMetric(b *testing.B, rows []alpacomm.MicroRow, caseFilter string) {
	sums := map[string]float64{}
	counts := map[string]float64{}
	for _, r := range rows {
		if caseFilter != "" && r.Case != caseFilter {
			continue
		}
		sums[r.Method] += r.EffGbps
		counts[r.Method]++
	}
	for m, s := range sums {
		name := strings.ReplaceAll(strings.ToLower(m), "/", "-") + "-Gbps"
		b.ReportMetric(s/counts[m], name)
	}
}

func BenchmarkFig5a(b *testing.B) {
	var rows []alpacomm.MicroRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = alpacomm.Fig5aRows(4)
		if err != nil {
			b.Fatal(err)
		}
	}
	microMetric(b, rows, "4gpu")
}

func BenchmarkFig5b(b *testing.B) {
	var rows []alpacomm.MicroRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = alpacomm.Fig5bRows(4)
		if err != nil {
			b.Fatal(err)
		}
	}
	microMetric(b, rows, "4host")
}

func BenchmarkFig6(b *testing.B) {
	var rows []alpacomm.MicroRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = alpacomm.Fig6Rows(8)
		if err != nil {
			b.Fatal(err)
		}
	}
	microMetric(b, rows, "")
}

func BenchmarkFig8(b *testing.B) {
	var rows []alpacomm.MicroRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = alpacomm.Fig8Rows(8)
		if err != nil {
			b.Fatal(err)
		}
	}
	microMetric(b, rows, "")
}

// e2eMetric reports TFLOPS per method averaged over cases of one model.
func e2eMetric(b *testing.B, rows []alpacomm.E2ERow, model string) {
	sums := map[string]float64{}
	counts := map[string]float64{}
	for _, r := range rows {
		if r.Model != model {
			continue
		}
		sums[r.Method] += r.TFLOPS
		counts[r.Method]++
	}
	for m, s := range sums {
		name := strings.ReplaceAll(strings.ReplaceAll(strings.ToLower(m), "/", "-"), " ", "-") + "-TFLOPS"
		b.ReportMetric(s/counts[m], name)
	}
}

func BenchmarkFig7GPT(b *testing.B) {
	var rows []alpacomm.E2ERow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = alpacomm.Fig7Rows(8)
		if err != nil {
			b.Fatal(err)
		}
	}
	e2eMetric(b, rows, "GPT")
}

func BenchmarkFig7UTrans(b *testing.B) {
	var rows []alpacomm.E2ERow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = alpacomm.Fig7Rows(8)
		if err != nil {
			b.Fatal(err)
		}
	}
	e2eMetric(b, rows, "U-Trans")
}

func BenchmarkFig9(b *testing.B) {
	var rows []alpacomm.Fig9Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = alpacomm.Fig9Rows()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.MicroBatches == 32 {
			name := strings.ToLower(strings.ReplaceAll(r.Method, "-", "")) + "-TFLOPS"
			b.ReportMetric(r.TFLOPS, name)
		}
	}
}

func BenchmarkTable1Memory(b *testing.B) {
	var m = alpacomm.GPTLayerMemory(1024, 12288, 2, 8)
	for i := 0; i < b.N; i++ {
		m = alpacomm.GPTLayerMemory(1024, 12288, 2, 8)
	}
	b.ReportMetric(float64(m.WeightOptBytes)/(1<<30), "weightopt-GiB")
	b.ReportMetric(float64(m.ActivationBytes)/(1<<20), "activation-MiB")
}

// BenchmarkReshardPlan measures the planner itself (decomposition +
// scheduling) on a Fig. 6-sized problem.
func BenchmarkReshardPlan(b *testing.B) {
	cluster := alpacomm.AWSP3Cluster(4)
	src, err := cluster.Slice([]int{2, 4}, 0)
	if err != nil {
		b.Fatal(err)
	}
	dst, err := cluster.Slice([]int{2, 4}, 8)
	if err != nil {
		b.Fatal(err)
	}
	shape, _ := alpacomm.NewShape(1024, 1024, 64)
	srcSpec, _ := alpacomm.ParseSpec("RS01R")
	dstSpec, _ := alpacomm.ParseSpec("S01RR")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		task, err := alpacomm.NewReshardTask(shape, alpacomm.Float32, src, srcSpec, dst, dstSpec)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := alpacomm.PlanReshard(task, alpacomm.ReshardOptions{
			Strategy:  alpacomm.StrategyBroadcast,
			Scheduler: alpacomm.SchedulerEnsemble,
			Seed:      1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// boundaryTask builds the resharding at stage boundary s of a 9-stage
// pipeline on a 9-host p3 cluster: one (2,2) mesh per host, the boundary
// tensor resharded S01R -> S0R between consecutive hosts. All 8 boundaries
// are structurally congruent — the cross-boundary cache's target shape.
func boundaryTask(b *testing.B, cluster *alpacomm.Cluster, s int) *alpacomm.ReshardTask {
	b.Helper()
	src, err := cluster.Slice([]int{2, 2}, 4*s)
	if err != nil {
		b.Fatal(err)
	}
	dst, err := cluster.Slice([]int{2, 2}, 4*(s+1))
	if err != nil {
		b.Fatal(err)
	}
	shape, _ := alpacomm.NewShape(512, 1024)
	srcSpec, _ := alpacomm.ParseSpec("S01R")
	dstSpec, _ := alpacomm.ParseSpec("S0R")
	task, err := alpacomm.NewReshardTask(shape, alpacomm.Float32, src, srcSpec, dst, dstSpec)
	if err != nil {
		b.Fatal(err)
	}
	return task
}

var boundaryOpts = alpacomm.ReshardOptions{
	Strategy:  alpacomm.StrategyBroadcast,
	Scheduler: alpacomm.SchedulerEnsemble,
	Seed:      1,
}

// Benchmark8BoundarySequential is the seed's hot path: every stage boundary
// of an 8-boundary pipeline is planned and simulated from scratch with the
// sequential SchedEnsemble search.
func Benchmark8BoundarySequential(b *testing.B) {
	cluster := alpacomm.AWSP3Cluster(9)
	for i := 0; i < b.N; i++ {
		for s := 0; s < 8; s++ {
			plan, err := alpacomm.PlanReshard(boundaryTask(b, cluster, s), boundaryOpts)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := plan.Simulate(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// Benchmark8BoundaryCached is the same workload through the plan cache: the
// first boundary plans, the remaining seven hit the translated entry.
func Benchmark8BoundaryCached(b *testing.B) {
	cluster := alpacomm.AWSP3Cluster(9)
	for i := 0; i < b.N; i++ {
		cache := alpacomm.NewReshardCache()
		for s := 0; s < 8; s++ {
			if _, err := cache.Simulate(boundaryTask(b, cluster, s), boundaryOpts); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// Benchmark8BoundaryAutotuneCached sweeps the full strategy x scheduler
// grid concurrently for every boundary, with the cache collapsing the 8
// congruent boundaries into one sweep.
func Benchmark8BoundaryAutotuneCached(b *testing.B) {
	cluster := alpacomm.AWSP3Cluster(9)
	for i := 0; i < b.N; i++ {
		cache := alpacomm.NewReshardCache()
		for s := 0; s < 8; s++ {
			if _, err := alpacomm.AutotuneReshard(boundaryTask(b, cluster, s), alpacomm.AutotuneOptions{
				Base:  boundaryOpts,
				Cache: cache,
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkNetsim measures the discrete-event engine on a contention-heavy
// op graph (the workload shared with the netsim_replay artifact row),
// rebuilding the net cold every iteration.
func BenchmarkNetsim(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		net := alpacomm.NewClusterNet(alpacomm.AWSP3Cluster(4))
		if err := harness.NetsimReplayTransfers(net); err != nil {
			b.Fatal(err)
		}
		if _, err := net.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
