// Degraded-topology golden fixtures: for every (preset, fault scenario)
// pair, the healthy plan and the replan-on-degrade outcome — senders,
// launch order, makespans and the full Event timeline — captured once and
// asserted byte-identical across runs and machines.
//
// Regenerate with: go test -run TestGoldenDegraded -update .
// (the same -update flag golden_test.go registers; both fixture files are
// rewritten by their own test only).
//
// The file also pins the empty-overlay identity acceptance criterion on
// all three presets: a FaultedTopology with a zero FaultSet produces
// plans, makespans, Events and cache keys byte-identical to the unwrapped
// topology — verified against the same golden bytes, not just against a
// second live run.
package alpacomm_test

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	alpacomm "alpacomm"
	"alpacomm/internal/resharding"
)

// goldenDegradedHealthy is one preset's baseline plan on the pristine
// topology, stored once per preset (every scenario row references it).
type goldenDegradedHealthy struct {
	Preset   string        `json:"preset"`
	SenderOf map[int]int   `json:"sender_of"`
	Order    []int         `json:"order"`
	Makespan float64       `json:"makespan"`
	Events   []goldenEvent `json:"events"`
}

// goldenDegradedRow is one (preset, scenario) replan-on-degrade outcome.
type goldenDegradedRow struct {
	Preset   string `json:"preset"`
	Scenario string `json:"scenario"`
	// Faults is the overlay's canonical form, pinning the scenario
	// definition itself.
	Faults   string        `json:"faults"`
	SenderOf map[int]int   `json:"sender_of"`
	Order    []int         `json:"order"`
	Makespan float64       `json:"makespan"`
	EffGbps  float64       `json:"eff_gbps"`
	Events   []goldenEvent `json:"events"`
}

// goldenDegradedFile is the fixture layout.
type goldenDegradedFile struct {
	Healthy []goldenDegradedHealthy `json:"healthy"`
	Rows    []goldenDegradedRow     `json:"rows"`
}

// goldenDegradedOpts is the deterministic planning configuration of the
// scenario pack (node-budgeted DFS, fixed seed).
var goldenDegradedOpts = alpacomm.ReshardOptions{
	Strategy:  alpacomm.StrategyBroadcast,
	Scheduler: alpacomm.SchedulerEnsemble,
	Seed:      1,
	DFSNodes:  20000,
	Chunks:    8,
}

// goldenDegradedPresets mirrors the harness scenario pack: host counts
// chosen so every scenario is buildable (link-down needs a detour host).
func goldenDegradedPresets() []struct {
	Name string
	Topo alpacomm.Topology
} {
	return []struct {
		Name string
		Topo alpacomm.Topology
	}{
		{"p3", alpacomm.AWSP3Cluster(4)},
		{"dgx-a100", alpacomm.DGXA100Cluster(3)},
		{"mixed", alpacomm.MixedP3DGXCluster(2, 2, 2)},
	}
}

// goldenDegradedTask builds the shared golden boundary on a topology.
func goldenDegradedTask(t *testing.T, topo alpacomm.Topology) *alpacomm.ReshardTask {
	t.Helper()
	shape, err := alpacomm.NewShape(128, 128, 8)
	if err != nil {
		t.Fatal(err)
	}
	src, err := topo.Slice([]int{2, 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := topo.Slice([]int{2, 4}, 8)
	if err != nil {
		t.Fatal(err)
	}
	srcSpec, _ := alpacomm.ParseSpec("RS01R")
	dstSpec, _ := alpacomm.ParseSpec("S01RR")
	task, err := alpacomm.NewReshardTask(shape, alpacomm.Float32, src, srcSpec, dst, dstSpec)
	if err != nil {
		t.Fatal(err)
	}
	return task
}

func buildGoldenDegraded(t *testing.T) goldenDegradedFile {
	t.Helper()
	ctx := context.Background()
	reg := alpacomm.DefaultTopologyRegistry()
	var out goldenDegradedFile
	for _, p := range goldenDegradedPresets() {
		task := goldenDegradedTask(t, p.Topo)
		planner := alpacomm.NewPlanner(alpacomm.WithTopology(p.Topo))
		healthyPlan, healthySim, err := planner.Plan(ctx, task, goldenDegradedOpts)
		if err != nil {
			t.Fatalf("%s: healthy plan: %v", p.Name, err)
		}
		out.Healthy = append(out.Healthy, goldenDegradedHealthy{
			Preset:   p.Name,
			SenderOf: healthyPlan.SenderOf,
			Order:    healthyPlan.Order,
			Makespan: healthySim.Makespan,
			Events:   toGoldenEvents(healthySim.Events),
		})
		for _, scenario := range reg.FaultScenarioNames() {
			fs, err := reg.BuildFaultScenario(scenario, p.Topo)
			if err != nil {
				t.Fatalf("%s/%s: %v", p.Name, scenario, err)
			}
			degPlan, degSim, err := planner.ReplanDegraded(ctx, task, goldenDegradedOpts, fs)
			if err != nil {
				t.Fatalf("%s/%s: replan: %v", p.Name, scenario, err)
			}
			out.Rows = append(out.Rows, goldenDegradedRow{
				Preset:   p.Name,
				Scenario: scenario,
				Faults:   fs.Canonical(),
				SenderOf: degPlan.SenderOf,
				Order:    degPlan.Order,
				Makespan: degSim.Makespan,
				EffGbps:  degSim.EffectiveGbps,
				Events:   toGoldenEvents(degSim.Events),
			})
		}
	}
	return out
}

// TestGoldenDegraded asserts the scenario pack is byte-identical to the
// committed fixtures.
func TestGoldenDegraded(t *testing.T) {
	got := buildGoldenDegraded(t)
	path := filepath.Join("testdata", "golden_degraded.json")
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "\t")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("degraded golden fixtures rewritten: %s", path)
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing degraded golden fixtures (run with -update): %v", err)
	}
	var want goldenDegradedFile
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(got.Healthy) != len(want.Healthy) || len(got.Rows) != len(want.Rows) {
		t.Fatalf("fixture count: got %d/%d want %d/%d",
			len(got.Healthy), len(got.Rows), len(want.Healthy), len(want.Rows))
	}
	healthyOf := map[string]goldenDegradedHealthy{}
	for i, w := range want.Healthy {
		g := got.Healthy[i]
		if g.Preset != w.Preset {
			t.Fatalf("healthy fixture %d identity: got %s want %s", i, g.Preset, w.Preset)
		}
		healthyOf[w.Preset] = w
		if g.Makespan != w.Makespan {
			t.Errorf("%s healthy: makespan %v, want %v", g.Preset, g.Makespan, w.Makespan)
		}
		if !reflect.DeepEqual(g.SenderOf, w.SenderOf) || !reflect.DeepEqual(g.Order, w.Order) {
			t.Errorf("%s: healthy plan differs from fixture", g.Preset)
		}
		assertEventsEqual(t, g.Preset+"/healthy", g.Events, w.Events)
	}
	for i, w := range want.Rows {
		g := got.Rows[i]
		name := g.Preset + "/" + g.Scenario
		if g.Preset != w.Preset || g.Scenario != w.Scenario || g.Faults != w.Faults {
			t.Fatalf("fixture %d identity: got %s faults %q, want %s/%s faults %q",
				i, name, g.Faults, w.Preset, w.Scenario, w.Faults)
		}
		if g.Makespan != w.Makespan || g.EffGbps != w.EffGbps {
			t.Errorf("%s: makespan/gbps = %v/%v, want %v/%v", name, g.Makespan, g.EffGbps, w.Makespan, w.EffGbps)
		}
		if !reflect.DeepEqual(g.SenderOf, w.SenderOf) || !reflect.DeepEqual(g.Order, w.Order) {
			t.Errorf("%s: degraded plan differs from fixture", name)
		}
		assertEventsEqual(t, name+"/degraded", g.Events, w.Events)
		if g.Makespan < healthyOf[g.Preset].Makespan {
			t.Errorf("%s: degraded makespan %g beats healthy %g", name, g.Makespan, healthyOf[g.Preset].Makespan)
		}
	}
}

// TestGoldenEmptyFaultSetIdentity pins the acceptance criterion against
// the committed golden bytes: on all three presets, planning through a
// FaultedTopology with an empty FaultSet reproduces the fixture's healthy
// plan, makespan and Events exactly, and shares the healthy cache key.
func TestGoldenEmptyFaultSetIdentity(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "golden_degraded.json"))
	if err != nil {
		t.Skipf("degraded golden fixtures not built yet (run -update): %v", err)
	}
	var want goldenDegradedFile
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	healthyOf := map[string]goldenDegradedHealthy{}
	for _, w := range want.Healthy {
		healthyOf[w.Preset] = w
	}
	ctx := context.Background()
	for _, p := range goldenDegradedPresets() {
		w, ok := healthyOf[p.Name]
		if !ok {
			t.Fatalf("no fixture rows for preset %s", p.Name)
		}
		wrapped, err := alpacomm.NewFaultedTopology(p.Topo, alpacomm.FaultSet{})
		if err != nil {
			t.Fatal(err)
		}
		if wrapped.Fingerprint() != p.Topo.Fingerprint() {
			t.Errorf("%s: empty overlay changed the fingerprint", p.Name)
		}
		task := goldenDegradedTask(t, wrapped)
		planner := alpacomm.NewPlanner(alpacomm.WithTopology(p.Topo))
		plan, sim, err := planner.Plan(ctx, task, goldenDegradedOpts)
		if err != nil {
			t.Fatalf("%s: plan on empty overlay: %v", p.Name, err)
		}
		if sim.Makespan != w.Makespan {
			t.Errorf("%s: empty-overlay makespan %v != golden healthy %v", p.Name, sim.Makespan, w.Makespan)
		}
		if !reflect.DeepEqual(plan.SenderOf, w.SenderOf) || !reflect.DeepEqual(plan.Order, w.Order) {
			t.Errorf("%s: empty-overlay plan differs from golden healthy plan", p.Name)
		}
		assertEventsEqual(t, p.Name+"/empty-overlay", toGoldenEvents(sim.Events), w.Events)

		// Cache-key identity: the wrapped and unwrapped boundaries are one
		// cache entry.
		baseTask := goldenDegradedTask(t, p.Topo)
		opts := planner.ResolveOptions(goldenDegradedOpts)
		if resharding.CacheKey(task, opts) != resharding.CacheKey(baseTask, opts) {
			t.Errorf("%s: empty overlay changed the cache key", p.Name)
		}
	}
}
