package alpacomm_test

import (
	"context"
	"testing"
	"time"

	alpacomm "alpacomm"
)

// TestPlannerSessionTrainingJob: a caller-owned session drives a training
// job, its cache collapses the 7 congruent boundaries to one computation,
// and a second job sharing the session runs entirely from memory —
// matching the legacy Cache-field behavior bit for bit.
func TestPlannerSessionTrainingJob(t *testing.T) {
	session := alpacomm.NewPlanner(alpacomm.WithTopology(alpacomm.AWSP3Cluster(8)))
	job := deepGPTJob(t)
	job.Planner = session
	rep1, err := job.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	st := session.Cache().Stats()
	if st.Entries != 1 || st.Misses != 1 || st.Hits != 6 {
		t.Errorf("session cache stats %+v, want 1 entry / 1 miss / 6 hits", st)
	}

	legacy := deepGPTJob(t)
	legacy.Cache = alpacomm.NewReshardCache()
	rep2, err := legacy.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep1.IterationTime != rep2.IterationTime {
		t.Errorf("session-run iteration %g != legacy-cache run %g", rep1.IterationTime, rep2.IterationTime)
	}

	// Second job on the shared session: all hits, identical result.
	job2 := deepGPTJob(t)
	job2.Planner = session
	rep3, err := job2.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	st = session.Cache().Stats()
	if st.Misses != 1 || st.Hits != 13 {
		t.Errorf("shared-session second run should be all hits, got %+v", st)
	}
	if rep3.IterationTime != rep1.IterationTime {
		t.Errorf("shared-session runs disagree: %g vs %g", rep3.IterationTime, rep1.IterationTime)
	}
}

// TestPlanBoundaries: the one-call batch entry point plans every boundary
// of the GPT job, reports one equivalence class for its 7 congruent
// boundaries, and reproduces the timings TrainingJob.Run computes.
func TestPlanBoundaries(t *testing.T) {
	session := alpacomm.NewPlanner()
	job := deepGPTJob(t)
	plans, err := session.PlanBoundaries(context.Background(), &job)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 7 {
		t.Fatalf("planned %d boundaries, want 7", len(plans))
	}
	keys := map[string]bool{}
	for i, bp := range plans {
		if bp.Boundary != i {
			t.Errorf("plan %d reports boundary %d", i, bp.Boundary)
		}
		if bp.Plan == nil || bp.Sim == nil || bp.Sim.Makespan <= 0 {
			t.Fatalf("boundary %d degenerate: %+v", i, bp)
		}
		keys[bp.Key] = true
		if bp.Sim.Makespan != plans[0].Sim.Makespan {
			t.Errorf("boundary %d makespan %g != boundary 0 %g", i, bp.Sim.Makespan, plans[0].Sim.Makespan)
		}
	}
	if len(keys) != 1 {
		t.Errorf("7 congruent boundaries span %d equivalence classes, want 1", len(keys))
	}
	if st := session.Cache().Stats(); st.Misses != 1 {
		t.Errorf("PlanBoundaries cost %d computations, want 1 (stats %+v)", st.Misses, st)
	}

	// The batch timings must agree with the job's own run bit for bit.
	rep, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i, bp := range plans {
		if rep.FwdCommTime[i] != bp.Sim.Makespan {
			t.Errorf("boundary %d: PlanBoundaries %g != Run %g", i, bp.Sim.Makespan, rep.FwdCommTime[i])
		}
	}
}

// TestRunContextCancelled: an autotuned deep job under an immediately
// cancelled context aborts instead of sweeping 7 boundaries' grids.
func TestRunContextCancelled(t *testing.T) {
	job := deepGPTJob(t)
	job.Autotune = true
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := job.RunContext(ctx); err != context.Canceled {
		t.Fatalf("cancelled RunContext returned %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancelled run took %v", elapsed)
	}
}
