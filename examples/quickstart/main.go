// Quickstart: plan, simulate and execute one cross-mesh resharding — the
// paper's Figure 2, Task 1 — in a few lines of the public API.
package main

import (
	"context"
	"fmt"
	"log"

	alpacomm "alpacomm"
)

func main() {
	// A cluster of 2 nodes x 4 V100 (the paper's AWS p3.8xlarge testbed).
	cluster := alpacomm.AWSP3Cluster(2)

	// MeshA = devices [[0,1],[2,3]], MeshB = [[4,5],[6,7]] (Figure 2).
	meshA, err := cluster.Slice([]int{2, 2}, 0)
	if err != nil {
		log.Fatal(err)
	}
	meshB, err := cluster.Slice([]int{2, 2}, 4)
	if err != nil {
		log.Fatal(err)
	}

	// A 4096x4096 fp32 tensor, sharded S01R on MeshA (one row block per
	// device), required as S0R on MeshB (row halves, replicated per row).
	shape, err := alpacomm.NewShape(4096, 4096)
	if err != nil {
		log.Fatal(err)
	}
	srcSpec, err := alpacomm.ParseSpec("S01R")
	if err != nil {
		log.Fatal(err)
	}
	dstSpec, err := alpacomm.ParseSpec("S0R")
	if err != nil {
		log.Fatal(err)
	}
	task, err := alpacomm.NewReshardTask(shape, alpacomm.Float32, meshA, srcSpec, meshB, dstSpec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(task)
	for _, u := range task.Units {
		fmt.Printf("  unit %d: slice %v, senders %v -> receivers %v\n", u.Index, u.Slice, u.Senders, u.Receivers)
	}

	// Plan through a session with the paper's configuration: broadcast
	// strategy + ensemble load balancing. The session owns the plan cache
	// and honors ctx cancellation end to end; one call plans and simulates
	// on the cluster network model.
	planner := alpacomm.NewPlanner(
		alpacomm.WithTopology(cluster),
		alpacomm.WithDefaultPlanOptions(alpacomm.ReshardOptions{
			Strategy:  alpacomm.StrategyBroadcast,
			Scheduler: alpacomm.SchedulerEnsemble,
		}),
	)
	plan, res, err := planner.Plan(context.Background(), task, alpacomm.ReshardOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated completion: %.4fs (%.2f Gbps effective)\n", res.Makespan, res.EffectiveGbps)

	// Execute on the data plane and verify every destination device.
	srcBufs, err := task.Src.Buffers()
	if err != nil {
		log.Fatal(err)
	}
	for _, b := range srcBufs {
		b.FillLinear()
	}
	dstBufs, err := task.Dst.Buffers()
	if err != nil {
		log.Fatal(err)
	}
	if err := plan.Execute(srcBufs, dstBufs); err != nil {
		log.Fatal(err)
	}
	for dev, b := range dstBufs {
		if ok, pt, got, want := b.VerifyLinear(); !ok {
			log.Fatalf("device %d wrong at %v: got %v want %v", dev, pt, got, want)
		}
	}
	fmt.Println("all destination devices hold exactly the data their spec requires")
}
