// loadbalance: the §3.2 scheduling problem in isolation. Four unit tasks
// between two sender hosts and two receiver hosts (the Fig. 6 case-3
// pattern): the naive order makes both senders target the same receiver —
// one NIC idles — while the ensemble scheduler packs disjoint pairs.
package main

import (
	"context"
	"fmt"
	"log"

	alpacomm "alpacomm"
)

func main() {
	cluster := alpacomm.AWSP3Cluster(4)
	src, err := cluster.Slice([]int{2, 4}, 0) // hosts 0-1
	if err != nil {
		log.Fatal(err)
	}
	dst, err := cluster.Slice([]int{2, 4}, 8) // hosts 2-3
	if err != nil {
		log.Fatal(err)
	}

	shape, _ := alpacomm.NewShape(2048, 2048)
	srcSpec, _ := alpacomm.ParseSpec("RS0") // columns on sender rows
	dstSpec, _ := alpacomm.ParseSpec("S0R") // rows on receiver rows
	task, err := alpacomm.NewReshardTask(shape, alpacomm.Float32, src, srcSpec, dst, dstSpec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%v\n\n", task)

	schedulers := []struct {
		name string
		kind alpacomm.SchedulerKind
	}{
		{"Naive (lowest-index sender, task order)", alpacomm.SchedulerNaive},
		{"Greedy lowest-load (baselines)", alpacomm.SchedulerGreedyLoad},
		{"Load balance only (LPT)", alpacomm.SchedulerLoadBalanceOnly},
		{"Ensemble: DFS + randomized greedy (ours)", alpacomm.SchedulerEnsemble},
	}
	planner := alpacomm.NewPlanner(alpacomm.WithTopology(cluster))
	for _, sched := range schedulers {
		plan, res, err := planner.Plan(context.Background(), task, alpacomm.ReshardOptions{
			Strategy:  alpacomm.StrategyBroadcast,
			Scheduler: sched.kind,
			Seed:      1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-42s order %v  %8.4fs  %6.2f Gbps\n", sched.name, plan.Order, res.Makespan, res.EffectiveGbps)
	}
}
