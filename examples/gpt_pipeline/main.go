// gpt_pipeline: simulate multi-node training of the paper's GPT 1.3B
// under Table 3's (dp=2, op=2, pp=2) configuration, comparing pipeline
// schedules and communication systems (the Fig. 7a experiment).
package main

import (
	"context"
	"fmt"
	"log"

	alpacomm "alpacomm"
)

func main() {
	ctx := context.Background()
	cluster := alpacomm.AWSP3Cluster(2) // 8 V100s
	// One planning session shared by every system below: each (strategy,
	// scheduler) boundary plans once, and a ctx deadline would abort any
	// of the runs mid-search.
	session := alpacomm.NewPlanner(alpacomm.WithTopology(cluster))
	pc := alpacomm.ParallelConfig{DP: 2, OP: 2, PP: 2}
	workload, err := alpacomm.NewGPTWorkload(alpacomm.GPT1_3B(), pc, alpacomm.Float16, 1024, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GPT 1.3B: %d micro-batches/iter, %d stages, boundary %d MB/micro-batch\n",
		workload.NumMicroBatches, len(workload.Stages), workload.BoundaryBytes(0)>>20)

	systems := []struct {
		name     string
		strategy alpacomm.Strategy
		schedule alpacomm.PipelineKind
		overlap  bool
	}{
		{"Send/Recv + 1F1B", alpacomm.StrategySendRecv, alpacomm.Schedule1F1B, false},
		{"Alpa + 1F1B", alpacomm.StrategyAlpa, alpacomm.Schedule1F1B, false},
		{"Broadcast + 1F1B", alpacomm.StrategyBroadcast, alpacomm.Schedule1F1B, false},
		{"AlpaComm (eager-1F1B + overlap)", alpacomm.StrategyBroadcast, alpacomm.ScheduleEager1F1B, true},
		{"Signal Send/Recv (upper bound)", alpacomm.StrategySignal, alpacomm.Schedule1F1B, false},
	}
	for _, s := range systems {
		job := alpacomm.TrainingJob{
			Cluster:  cluster,
			Device:   alpacomm.V100(),
			Workload: workload,
			Parallel: pc,
			Schedule: s.schedule,
			Overlap:  s.overlap,
			Reshard: alpacomm.ReshardOptions{
				Strategy:  s.strategy,
				Scheduler: alpacomm.SchedulerEnsemble,
			},
			Planner: session,
		}
		rep, err := job.RunContext(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s iter %7.2fs  %7.1f TFLOPS (%5.1f per GPU)  peak acts %v\n",
			s.name, rep.IterationTime, rep.TFLOPS, rep.PerGPUTFLOPS, rep.PeakActivations)
	}
}
