// Heterogeneous-cluster scenario: the pluggable topology layer beyond the
// paper's single homogeneous testbed.
//
// Part 1 reshards a stage boundary across a mixed fabric — two AWS
// p3-style Ethernet hosts feeding one DGX-A100 InfiniBand host through a
// 1.5:1 oversubscribed switch — and autotunes the strategy x scheduler
// grid for it.
//
// Part 2 runs a full 4-stage GPT training iteration on a DGX-A100 cluster
// with per-boundary autotuning and a shared plan cache, showing the three
// congruent boundaries collapse to a single grid sweep.
package main

import (
	"context"
	"fmt"
	"log"

	alpacomm "alpacomm"
)

func main() {
	// ---- Part 1: autotune one boundary of a mixed p3 + DGX fabric. ----
	mixed := alpacomm.MixedP3DGXCluster(2, 1, 1.5)
	fmt.Printf("mixed fabric: %v\n", mixed)

	// Source mesh: the 8 V100s of the two p3 hosts. Destination mesh: the
	// 8 A100s of the DGX host.
	src, err := mixed.Slice([]int{2, 4}, 0)
	if err != nil {
		log.Fatal(err)
	}
	dst, err := mixed.Slice([]int{2, 4}, 8)
	if err != nil {
		log.Fatal(err)
	}
	shape, err := alpacomm.NewShape(2048, 1024)
	if err != nil {
		log.Fatal(err)
	}
	srcSpec, err := alpacomm.ParseSpec("S01R")
	if err != nil {
		log.Fatal(err)
	}
	dstSpec, err := alpacomm.ParseSpec("S0R")
	if err != nil {
		log.Fatal(err)
	}
	task, err := alpacomm.NewReshardTask(shape, alpacomm.Float32, src, srcSpec, dst, dstSpec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("boundary task: %v\n\n", task)

	mixedSession := alpacomm.NewPlanner(alpacomm.WithTopology(mixed))
	res, err := mixedSession.Autotune(context.Background(), task, alpacomm.ReshardOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-44s %12s %14s\n", "candidate", "time (s)", "eff-bw (Gbps)")
	for i, tr := range res.Trials {
		marker := "  "
		if i == res.BestIndex {
			marker = "* "
		}
		fmt.Printf("%s%-44s %12.6f %14.2f\n", marker, tr.Candidate, tr.Makespan, tr.EffectiveGbps)
	}
	fmt.Printf("\nwinner: %v (%.2f Gbps effective across the oversubscribed fabric)\n\n",
		res.Trials[res.BestIndex].Candidate, res.BestSim.EffectiveGbps)

	// ---- Part 2: GPT training on DGX-A100 with autotuned boundaries. ----
	pc := alpacomm.ParallelConfig{DP: 2, OP: 4, PP: 4}
	w, err := alpacomm.NewGPTWorkload(alpacomm.GPT1_3B(), pc, alpacomm.Float16, 64, 2)
	if err != nil {
		log.Fatal(err)
	}
	dgx := alpacomm.DGXA100Cluster(4) // one 8-GPU NVSwitch host per stage
	session := alpacomm.NewPlanner(alpacomm.WithTopology(dgx))
	job := alpacomm.TrainingJob{
		Cluster:  dgx,
		Device:   alpacomm.V100(),
		Workload: w,
		Parallel: pc,
		Schedule: alpacomm.ScheduleEager1F1B,
		Overlap:  true,
		Reshard:  alpacomm.ReshardOptions{Seed: 1},
		Autotune: true,
		Planner:  session,
	}
	rep, err := job.RunContext(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GPT-1.3B on %v\n", job.Cluster)
	fmt.Printf("  iteration: %.4fs, %.1f TFLOPS aggregate (%.2f per GPU)\n",
		rep.IterationTime, rep.TFLOPS, rep.PerGPUTFLOPS)
	fmt.Printf("  per-boundary comm: %v\n", rep.FwdCommTime)
	st := session.AutotuneCache().Stats()
	fmt.Printf("  autotune cache: %d entries, %d misses, %d hits — %d congruent boundaries autotuned for the price of one\n",
		st.Entries, st.Misses, st.Hits, len(rep.FwdCommTime))
}
