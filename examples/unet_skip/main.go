// unet_skip: the U-Transformer experiment (Fig. 7c). The U-shaped skip
// connections all cross the encoder/decoder pipeline boundary, making
// cross-mesh resharding the bottleneck; eager-1F1B hides it.
package main

import (
	"context"
	"fmt"
	"log"

	alpacomm "alpacomm"
)

func main() {
	ctx := context.Background()
	cluster := alpacomm.AWSP3Cluster(4) // 16 V100s, stages span 2 hosts each
	// One planning session for all three systems: congruent boundary plans
	// computed for one schedule are reused by the next.
	session := alpacomm.NewPlanner(alpacomm.WithTopology(cluster))
	pc := alpacomm.ParallelConfig{DP: 2, OP: 4, PP: 2}
	workload, err := alpacomm.NewUTransWorkload(alpacomm.UTrans1B(), pc, alpacomm.Float16, 2048, 2)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("U-Transformer 1B: tensors crossing the encoder/decoder boundary:")
	for _, bt := range workload.Boundaries {
		fmt.Printf("  %-12s %v (%d MB)\n", bt.Name, bt.Shape, bt.Elements()*2>>20)
	}
	fmt.Printf("total boundary traffic per micro-batch: %d MB\n\n", workload.BoundaryBytes(0)>>20)

	for _, s := range []struct {
		name     string
		schedule alpacomm.PipelineKind
		overlap  bool
	}{
		{"Broadcast (no overlap)", alpacomm.Schedule1F1B, false},
		{"Overlap (1F1B)", alpacomm.Schedule1F1B, true},
		{"Eager-1F1B (ours)", alpacomm.ScheduleEager1F1B, true},
	} {
		job := alpacomm.TrainingJob{
			Cluster:  cluster,
			Device:   alpacomm.V100Conv(),
			Workload: workload,
			Parallel: pc,
			Schedule: s.schedule,
			Overlap:  s.overlap,
			Reshard: alpacomm.ReshardOptions{
				Strategy:  alpacomm.StrategyBroadcast,
				Scheduler: alpacomm.SchedulerEnsemble,
			},
			Planner: session,
		}
		rep, err := job.RunContext(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s iter %7.2fs  %7.1f TFLOPS  comm/micro-batch %.1f ms\n",
			s.name, rep.IterationTime, rep.TFLOPS, rep.FwdCommTime[0]*1e3)
	}
}
